"""ChampSim trace frontend: decode, lowering, and engine integration.

The trace path is fed by files we do not control, so the edge cases are
the contract: corrupt or truncated gzip, a final partial record, an
empty trace, PCs and addresses at the top of the 64-bit space, and
traces far longer than the simulation budget must all end in a clean
:class:`ConfigError` or a clamped run — never a stall or a stack trace
from ``struct``.  On top, the lowered workload must behave as a
first-class citizen of the engine: content-addressed caching, checkpoint
resume, and fast/slow interpreter identity.
"""

from __future__ import annotations

import gzip
import random

import pytest

from repro.config import PrefetchPolicy, SimulationConfig
from repro.errors import ConfigError
from repro.harness.engine import ExperimentEngine, SimJob, make_job
from repro.harness.runner import Simulation
from repro.scenarios.trace import (
    RECORD,
    RECORD_SIZE,
    TRACE_BASE,
    TraceSpec,
    find_period,
    lower_trace,
    map_address,
    read_trace,
    split_blocks,
)


def record(ip, is_branch=0, taken=0, loads=(), stores=()):
    loads = tuple(loads) + (0,) * (4 - len(loads))
    stores = tuple(stores) + (0,) * (2 - len(stores))
    return RECORD.pack(
        ip, is_branch, taken, 0, 0, 0, 0, 0, 0, *stores, *loads
    )


def write_trace(path, payload: bytes):
    with gzip.open(path, "wb") as fh:
        fh.write(payload)
    return str(path)


def loop_payload(iters=40, body=3):
    out = []
    for i in range(iters):
        out.append(record(0x1000, loads=(0x5000_0000 + i * 64,)))
        if body >= 3:
            out.append(record(0x1008, loads=(0x6000_0000 + i * 8,)))
        out.append(record(0x1010, is_branch=1, taken=1))
    return b"".join(out)


# ---------------------------------------------------------------------------
# Reader edge cases.
# ---------------------------------------------------------------------------


class TestReader:
    def test_reads_records(self, tmp_path):
        path = write_trace(tmp_path / "t.gz", loop_payload(10))
        records = read_trace(path)
        assert len(records) == 30
        assert records[0].loads == (0x5000_0000,)
        assert records[2].is_branch and records[2].taken

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigError, match="cannot read"):
            read_trace(tmp_path / "absent.gz")

    def test_not_gzip(self, tmp_path):
        path = tmp_path / "plain.gz"
        path.write_bytes(b"this is not a gzip stream at all........")
        with pytest.raises(ConfigError, match="cannot read"):
            read_trace(path)

    def test_corrupt_gzip_body(self, tmp_path):
        path = tmp_path / "corrupt.gz"
        good = gzip.compress(loop_payload(20))
        path.write_bytes(good[: len(good) // 2] + b"\x00" * 8)
        with pytest.raises(ConfigError, match="cannot read"):
            read_trace(path)

    def test_truncated_final_record(self, tmp_path):
        payload = loop_payload(5) + record(0x1000)[: RECORD_SIZE // 2]
        path = write_trace(tmp_path / "trunc.gz", payload)
        with pytest.raises(ConfigError, match="truncated"):
            read_trace(path)

    def test_zero_length_trace(self, tmp_path):
        path = write_trace(tmp_path / "empty.gz", b"")
        with pytest.raises(ConfigError, match="no records"):
            read_trace(path)

    def test_limit_clamps_not_errors(self, tmp_path):
        path = write_trace(tmp_path / "long.gz", loop_payload(100))
        assert len(read_trace(path, limit=7)) == 7

    def test_limit_validated(self, tmp_path):
        path = write_trace(tmp_path / "t.gz", loop_payload(2))
        with pytest.raises(ConfigError, match="limit"):
            read_trace(path, limit=0)

    def test_pc_and_address_wraparound(self, tmp_path):
        """PCs and addresses at the very top of u64 decode and lower
        cleanly; mapped addresses stay inside the trace window."""
        top = (1 << 64) - 8
        payload = b"".join(
            record(top, loads=(top,)) for _ in range(3)
        ) + record(top - 8, is_branch=1, taken=1)
        path = write_trace(tmp_path / "wrap.gz", payload)
        records = read_trace(path)
        assert records[0].ip == top
        workload = lower_trace(records, "wrap")
        mapped = map_address(top)
        assert mapped >= TRACE_BASE
        assert mapped < TRACE_BASE + (1 << 32)
        result = Simulation(
            workload,
            SimulationConfig(
                policy=PrefetchPolicy.BASIC, max_instructions=100
            ),
        ).run()
        assert result.instructions > 0


# ---------------------------------------------------------------------------
# Block structure / periodicity.
# ---------------------------------------------------------------------------


class TestLowering:
    def test_find_period(self):
        assert find_period([("a",), ("a",), ("a",)]) == 1
        assert find_period([("a",), ("b",), ("a",), ("b",)]) == 2
        assert find_period([("a",), ("b",), ("c",)]) is None
        assert find_period([("a",)]) is None

    def test_split_blocks_keeps_tail(self):
        records = read_records = [
            # two branch-terminated blocks plus a dangling tail
        ]
        del read_records
        from repro.scenarios.trace import TraceRecord

        mk = lambda ip, br=False: TraceRecord(ip, br, br, (), ())  # noqa: E731
        blocks = split_blocks(
            [mk(1), mk(2, True), mk(1), mk(2, True), mk(9)]
        )
        assert [len(b) for b in blocks] == [2, 2, 1]

    def test_periodic_trace_forms_loop(self, tmp_path):
        path = write_trace(tmp_path / "loop.gz", loop_payload(50))
        workload = lower_trace(read_trace(path), "loopy")
        assert "periodic" in workload.description
        # A real loop: the budget clamps a long trace instead of the
        # program ending early (graceful clamp, not stall).
        result = Simulation(
            workload,
            SimulationConfig(
                policy=PrefetchPolicy.SELF_REPAIRING,
                max_instructions=200,
                wall_time_limit=60.0,
            ),
        ).run()
        assert result.instructions == 200

    def test_ragged_references_dropped_not_fatal(self, tmp_path):
        """Occurrences of one static load with differing reference
        counts across iterations lower cleanly (extras dropped)."""
        out = []
        for i in range(6):
            loads = (0x5000_0000 + i * 64,)
            if i % 2:
                loads += (0x7000_0000 + i * 8,)
            out.append(record(0x1000, loads=loads))
            out.append(record(0x1010, is_branch=1, taken=1))
        path = write_trace(tmp_path / "ragged.gz", b"".join(out))
        workload = lower_trace(read_trace(path), "ragged")
        assert "dropped" in workload.description
        Simulation(
            workload,
            SimulationConfig(
                policy=PrefetchPolicy.BASIC, max_instructions=100
            ),
        ).run()

    def test_aperiodic_trace_is_straight_line(self, tmp_path):
        rng = random.Random(3)
        payload = b"".join(
            record(0x1000 + i * 8, loads=(rng.randrange(1 << 40),))
            for i in range(30)
        )
        path = write_trace(tmp_path / "ap.gz", payload)
        workload = lower_trace(read_trace(path), "aper")
        assert "straight-line" in workload.description
        # Shorter than the budget: the program halts early, cleanly.
        result = Simulation(
            workload,
            SimulationConfig(
                policy=PrefetchPolicy.BASIC, max_instructions=5_000
            ),
        ).run()
        assert 0 < result.instructions < 5_000

    def test_stores_replayed(self, tmp_path):
        payload = b"".join(
            record(0x1000, stores=(0x5000_0000 + i * 64,))
            for i in range(8)
        )
        path = write_trace(tmp_path / "st.gz", payload)
        workload = lower_trace(read_trace(path), "stores")
        result = Simulation(
            workload,
            SimulationConfig(
                policy=PrefetchPolicy.BASIC, max_instructions=100
            ),
        ).run()
        assert result.instructions > 0


# ---------------------------------------------------------------------------
# TraceSpec: identity and guard rails.
# ---------------------------------------------------------------------------


class TestTraceSpec:
    def test_for_file_derives_name(self, tmp_path):
        path = write_trace(
            tmp_path / "My.Trace-01.champsim.gz", loop_payload(4)
        )
        spec = TraceSpec.for_file(path)
        assert spec.name == "my-trace-01"

    def test_builtin_collision_rejected(self, tmp_path):
        path = write_trace(tmp_path / "mcf.champsim.gz", loop_payload(4))
        with pytest.raises(ConfigError, match="collides"):
            TraceSpec.for_file(path)

    def test_spec_dict_excludes_path(self, tmp_path):
        path = write_trace(tmp_path / "t.gz", loop_payload(4))
        spec = TraceSpec.for_file(path)
        assert "path" not in spec.spec_dict()
        assert spec.to_dict()["path"] == str(path)

    def test_same_content_same_identity(self, tmp_path):
        a = write_trace(tmp_path / "a.gz", loop_payload(6))
        b = write_trace(tmp_path / "b.gz", loop_payload(6))
        sa = TraceSpec.for_file(a, name="same")
        sb = TraceSpec.for_file(b, name="same")
        assert sa.spec_dict() == sb.spec_dict()

    def test_edited_file_detected_at_build(self, tmp_path):
        path = write_trace(tmp_path / "t.gz", loop_payload(6))
        spec = TraceSpec.for_file(path)
        write_trace(path, loop_payload(7))
        with pytest.raises(ConfigError, match="changed since"):
            spec.build()


# ---------------------------------------------------------------------------
# Engine integration: cache, checkpoints, interpreters.
# ---------------------------------------------------------------------------


def _engine(tmp_path):
    from repro.harness.cache import ResultCache

    return ExperimentEngine(cache=ResultCache(tmp_path / "cache"))


class TestEngineIntegration:
    def test_cache_and_checkpoint_reuse(self, tmp_path):
        """The acceptance path: a trace job caches, replays, and seeds
        a longer budget through the checkpoint store."""
        path = write_trace(tmp_path / "t.champsim.gz", loop_payload(400))
        ref = f"trace:{path}"

        engine = _engine(tmp_path)
        job = make_job(ref, max_instructions=1_000)
        first = engine.run([job], isolate=False)[0]
        assert not first.cached

        again = engine.run([job], isolate=False)[0]
        assert again.cached
        assert again.result.to_dict() == first.result.to_dict()

        longer = make_job(ref, max_instructions=2_000)
        resumed = engine.run([longer], isolate=False)[0]
        assert resumed.resumed_from is not None

        # Resume must equal cold: a fresh engine with no stores.
        cold = ExperimentEngine(cache=None, checkpoints=None).run(
            [longer], isolate=False
        )[0]
        assert (
            resumed.result.to_dict() == cold.result.to_dict()
        ), "trace job resume-vs-cold divergence"

    def test_pool_worker_rebuilds_trace(self, tmp_path):
        path = write_trace(tmp_path / "t.gz", loop_payload(100))
        jobs = [
            make_job(f"trace:{path}", max_instructions=500),
            make_job(f"trace:{path}", max_instructions=800),
            make_job("mcf", max_instructions=500),
        ]
        pooled = ExperimentEngine(
            workers=2, cache=None, checkpoints=None
        ).run(jobs)
        serial = ExperimentEngine(cache=None, checkpoints=None).run(jobs)
        for p, s in zip(pooled, serial):
            assert p.ok and s.ok
            assert p.result.to_dict() == s.result.to_dict()

    def test_fast_slow_identity(self, tmp_path):
        path = write_trace(tmp_path / "t.gz", loop_payload(300))
        spec = TraceSpec.for_file(path)
        payloads = []
        for fast in (True, False):
            result = Simulation(
                spec.build(),
                SimulationConfig(
                    policy=PrefetchPolicy.SELF_REPAIRING,
                    max_instructions=1_500,
                    warmup_instructions=300,
                    fast=fast,
                ),
            ).run()
            payloads.append(result.to_dict())
        assert payloads[0] == payloads[1]

    def test_job_round_trips_through_journal_dict(self, tmp_path):
        path = write_trace(tmp_path / "t.gz", loop_payload(20))
        job = make_job(f"trace:{path}", max_instructions=500)
        rebuilt = SimJob.from_dict(job.to_dict())
        assert rebuilt.trace == job.trace
        assert rebuilt.spec() == job.spec()
        assert rebuilt.source == "trace"

    def test_sample_trace_fixture_replays(self):
        """The checked-in sample trace is readable and periodic."""
        import pathlib

        sample = (
            pathlib.Path(__file__).parent.parent
            / "examples" / "traces" / "sample_loop.champsim.gz"
        )
        assert sample.exists(), "examples/traces sample trace missing"
        spec = TraceSpec.for_file(sample)
        assert spec.name == "sample_loop"
        workload = spec.build()
        assert "periodic" in workload.description
        result = Simulation(
            workload,
            SimulationConfig(
                policy=PrefetchPolicy.SELF_REPAIRING,
                max_instructions=1_000,
            ),
        ).run()
        assert result.instructions == 1_000
