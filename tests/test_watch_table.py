"""Tests for the watch table (trace performance monitoring)."""

from repro.trident.watch_table import WatchTable


class TestWatchTable:
    def test_register_and_lookup(self):
        wt = WatchTable(capacity=4)
        entry = wt.register(1, head_pc=10, length=20)
        assert entry.head_pc == 10
        assert wt.lookup(1) is entry

    def test_register_idempotent(self):
        wt = WatchTable()
        a = wt.register(1, 10, 20)
        b = wt.register(1, 10, 20)
        assert a is b
        assert len(wt) == 1

    def test_min_execution_time_tracks_completed_only(self):
        wt = WatchTable()
        wt.register(1, 10, 20)
        wt.record_execution(1, 50.0, completed=True)
        wt.record_execution(1, 5.0, completed=False)  # early exit: ignored
        wt.record_execution(1, 30.0, completed=True)
        assert wt.min_execution_time(1) == 30.0

    def test_min_time_none_before_any_completion(self):
        wt = WatchTable()
        wt.register(1, 10, 20)
        assert wt.min_execution_time(1) is None
        wt.record_execution(1, 9.0, completed=False)
        assert wt.min_execution_time(1) is None

    def test_average_execution_time(self):
        wt = WatchTable()
        wt.register(1, 10, 20)
        wt.record_execution(1, 10.0, True)
        wt.record_execution(1, 30.0, True)
        assert wt.lookup(1).average_execution_time() == 20.0

    def test_optimization_flag(self):
        wt = WatchTable()
        wt.register(1, 10, 20)
        assert not wt.is_optimizing(1)
        wt.set_optimizing(1, True)
        assert wt.is_optimizing(1)
        wt.set_optimizing(1, False)
        assert not wt.is_optimizing(1)

    def test_unknown_trace_not_optimizing(self):
        wt = WatchTable()
        assert not wt.is_optimizing(99)

    def test_lru_eviction(self):
        wt = WatchTable(capacity=2)
        wt.register(1, 10, 5)
        wt.register(2, 20, 5)
        wt.lookup(1)                 # touch 1
        wt.register(3, 30, 5)        # evicts 2
        assert wt.lookup(2) is None
        assert wt.lookup(1) is not None
        assert wt.evictions == 1

    def test_remove(self):
        wt = WatchTable()
        wt.register(1, 10, 5)
        wt.remove(1)
        assert wt.lookup(1) is None
        wt.remove(1)  # idempotent

    def test_record_execution_unknown_trace_ignored(self):
        wt = WatchTable()
        wt.record_execution(42, 10.0, True)  # no crash
        assert wt.min_execution_time(42) is None
