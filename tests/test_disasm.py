"""Tests for the disassembler."""

from repro.isa.assembler import Assembler
from repro.isa.disasm import (
    disassemble,
    format_instruction,
    format_instructions,
)
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode


class TestFormatInstruction:
    def test_memory_forms(self):
        assert (
            format_instruction(Instruction(Opcode.LDQ, rd=2, ra=1, disp=8))
            == "ldq r2, 8(r1)"
        )
        assert (
            format_instruction(Instruction(Opcode.STQ, rd=2, ra=1, disp=-8))
            == "stq r2, -8(r1)"
        )
        assert (
            format_instruction(Instruction(Opcode.PREFETCH, ra=4, disp=128))
            == "prefetch 128(r4)"
        )
        assert (
            format_instruction(Instruction(Opcode.LDA, rd=3, ra=3, disp=64))
            == "lda r3, 64(r3)"
        )

    def test_alu_forms(self):
        assert (
            format_instruction(Instruction(Opcode.ADDQ, rd=1, ra=2, rb=3))
            == "addq r1, r2, r3"
        )
        assert (
            format_instruction(Instruction(Opcode.SUBQ, rd=1, ra=2, imm=5))
            == "subq r1, r2, #5"
        )

    def test_branch_forms(self):
        assert (
            format_instruction(Instruction(Opcode.BNE, ra=1, target=10))
            == "bne r1, 10"
        )
        assert (
            format_instruction(Instruction(Opcode.BNE, ra=1, label="loop"))
            == "bne r1, loop"
        )
        assert format_instruction(Instruction(Opcode.BR, target=3)) == "br 3"
        assert (
            format_instruction(Instruction(Opcode.JMP, ra=7)) == "jmp (r7)"
        )

    def test_misc_forms(self):
        assert (
            format_instruction(Instruction(Opcode.MOVE, rd=1, ra=2))
            == "move r1, r2"
        )
        assert format_instruction(Instruction(Opcode.NOP)) == "nop"
        assert format_instruction(Instruction(Opcode.HALT)) == "halt"


class TestDisassemble:
    def test_labels_and_range(self):
        asm = Assembler("t")
        asm.li("r1", 5)
        asm.label("loop")
        asm.subq("r1", "r1", imm=1)
        asm.bne("r1", "loop")
        asm.halt()
        program = asm.build()
        text = disassemble(program)
        assert "loop:" in text
        assert "subq r1, r1, #1" in text
        lines = disassemble(program, start=1, end=2).splitlines()
        assert any("subq" in line for line in lines)

    def test_format_instructions_sequence(self):
        text = format_instructions(
            [Instruction(Opcode.NOP), Instruction(Opcode.HALT)]
        )
        assert "nop" in text and "halt" in text
