"""Miscellaneous unit tests: small helpers across packages."""

import pytest

from repro.config import CacheConfig
from repro.isa.instruction import Instruction
from repro.isa.opcodes import (
    Opcode,
    SIMPLE_RECURRENCE_OPCODES,
    is_branch,
    is_conditional_branch,
    is_load,
    is_store,
    writes_register,
)
from repro.isa.registers import fresh_register_pool
from repro.memory.mainmem import DataMemory


class TestOpcodeSets:
    def test_load_store_disjoint(self):
        for op in Opcode:
            assert not (is_load(op) and is_store(op))

    def test_branches(self):
        assert is_branch(Opcode.BR)
        assert is_branch(Opcode.JMP)
        assert is_conditional_branch(Opcode.BEQ)
        assert not is_conditional_branch(Opcode.JMP)

    def test_simple_recurrence_set(self):
        assert Opcode.LDA in SIMPLE_RECURRENCE_OPCODES
        assert Opcode.ADDQ in SIMPLE_RECURRENCE_OPCODES
        assert Opcode.MULQ not in SIMPLE_RECURRENCE_OPCODES

    def test_writes_register(self):
        assert writes_register(Opcode.LDQ)
        assert writes_register(Opcode.MOVE)
        assert not writes_register(Opcode.STQ)
        assert not writes_register(Opcode.PREFETCH)
        assert not writes_register(Opcode.BNE)


class TestRegisterPool:
    def test_excludes_reserved_and_zero(self):
        pool = fresh_register_pool()
        assert 28 not in pool and 31 not in pool
        assert 0 in pool

    def test_exclude_parameter(self):
        pool = fresh_register_pool(exclude=[0, 1, 2])
        assert 0 not in pool and 3 in pool


class TestInstructionSources:
    def test_alu_sources(self):
        inst = Instruction(Opcode.ADDQ, rd=1, ra=2, rb=3)
        assert set(inst.source_registers()) == {2, 3}

    def test_imm_form_single_source(self):
        inst = Instruction(Opcode.ADDQ, rd=1, ra=2, imm=5)
        assert inst.source_registers() == (2,)

    def test_prefetch_source(self):
        inst = Instruction(Opcode.PREFETCH, ra=4, disp=64)
        assert inst.source_registers() == (4,)


class TestDataMemory:
    def test_write_array_and_len(self):
        memory = DataMemory()
        memory.write_array(0x1000, [1, 2, 3])
        assert len(memory) == 3
        assert memory.read(0x1008) == 2

    def test_word_alignment_of_access(self):
        memory = DataMemory()
        memory.write(0x1004, 9)  # lands in the word at 0x1000
        assert memory.read(0x1000) == 9
        assert memory.is_mapped(0x1007)
        assert not memory.is_mapped(0x1008)

    def test_read_quiet_does_not_count(self):
        memory = DataMemory()
        memory.read_quiet(0x5000)
        assert memory.unmapped_reads == 0
        memory.read(0x5000)
        assert memory.unmapped_reads == 1


class TestCacheConfigVariants:
    def test_line_size_changes_sets(self):
        a = CacheConfig(64 * 1024, 2, 3, line_size=64)
        b = CacheConfig(64 * 1024, 2, 3, line_size=128)
        assert a.num_sets == 2 * b.num_sets


class TestRecordMultiPrefetchPatch:
    def test_apply_distance_patches_all_instructions(self):
        from repro.core.repair import PrefetchRecord

        insts = [
            Instruction(Opcode.PREFETCH, ra=1, disp=0),
            Instruction(Opcode.PREFETCH, ra=1, disp=0),
        ]
        record = PrefetchRecord(
            group_key=(1, 2),
            load_pcs=(1, 2),
            base_reg=1,
            stride=64,
            distance=3,
            base_offsets=(0, 128),
            instructions=insts,
        )
        record.apply_distance()
        assert insts[0].disp == 0 + 64 * 3
        assert insts[1].disp == 128 + 64 * 3


class TestSimulationInputs:
    def test_accepts_workload_object(self):
        from repro import Simulation, SimulationConfig, PrefetchPolicy
        from repro.workloads.registry import load_workload

        workload = load_workload("swim")
        sim = Simulation(
            workload,
            SimulationConfig(
                policy=PrefetchPolicy.NONE, max_instructions=2_000
            ),
        )
        result = sim.run()
        assert result.workload == "swim"

    def test_seed_threaded_to_builder(self):
        from repro import run_simulation, PrefetchPolicy

        a = run_simulation(
            "dot", policy=PrefetchPolicy.NONE, max_instructions=2_000,
            seed=1,
        )
        b = run_simulation(
            "dot", policy=PrefetchPolicy.NONE, max_instructions=2_000,
            seed=2,
        )
        # Different layout, (almost surely) different timing.
        assert a.cycles != b.cycles
