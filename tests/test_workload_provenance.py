"""Workload provenance: scenario/trace-sourced jobs must say so in spans.

Companion suite to the ``spans_cover_journal`` tests: the flight
recorder's ``run`` spans are the only artifact tying a committed result
back to its workload source.  A scenario result whose span claims to be
a builtin (or says nothing) is unreproducible — you cannot tell which
generated spec produced it.  ``workload_provenance_problems`` audits
that linkage; this suite pins it with synthetic span/journal pairs and
a real mixed builtin+scenario engine run.
"""

from __future__ import annotations

from repro.harness.cache import ResultCache
from repro.harness.engine import ExperimentEngine, make_job
from repro.harness.journal import JobJournal, job_key
from repro.obs.telemetry import (
    TelemetryHub,
    spans_cover_journal,
    workload_provenance_problems,
)
from repro.scenarios import CATALOG


def _state(tmp_path, jobs):
    journal = JobJournal(tmp_path / "journal", fsync=False)
    for job in jobs:
        key = job_key(job.spec())
        journal.append("submit", key=key, job=job.to_dict())
        journal.append("done", key=key, elapsed_s=0.1)
    journal.close()
    return journal.recover()


def _run_span(job, **fields):
    return {
        "type": "span", "name": "run",
        "job_key": job_key(job.spec()), "fields": fields,
    }


def _scenario_job():
    return make_job(CATALOG["stride-flip"], max_instructions=2_000)


def _builtin_job():
    return make_job("art", max_instructions=2_000)


class TestProvenanceAudit:
    def test_correct_provenance_passes(self, tmp_path):
        scen, builtin = _scenario_job(), _builtin_job()
        state = _state(tmp_path, [scen, builtin])
        spans = [
            _run_span(scen, source="scenario", workload="stride-flip"),
            _run_span(builtin, source="builtin", workload="art"),
        ]
        assert workload_provenance_problems(spans, state) == []

    def test_scenario_span_claiming_builtin_is_flagged(self, tmp_path):
        scen = _scenario_job()
        state = _state(tmp_path, [scen])
        spans = [_run_span(scen, source="builtin", workload="stride-flip")]
        problems = workload_provenance_problems(spans, state)
        assert any("scenario-sourced" in p for p in problems)

    def test_scenario_span_missing_workload_name_is_flagged(self, tmp_path):
        scen = _scenario_job()
        state = _state(tmp_path, [scen])
        spans = [_run_span(scen, source="scenario")]
        problems = workload_provenance_problems(spans, state)
        assert any("missing its workload name" in p for p in problems)

    def test_builtin_span_claiming_scenario_is_flagged(self, tmp_path):
        builtin = _builtin_job()
        state = _state(tmp_path, [builtin])
        spans = [_run_span(builtin, source="scenario", workload="art")]
        problems = workload_provenance_problems(spans, state)
        assert any("builtin workload" in p for p in problems)

    def test_legacy_builtin_span_without_source_passes(self, tmp_path):
        """Pre-provenance journals (earlier PRs) have run spans with no
        ``source`` field; those must not be retro-flagged."""
        builtin = _builtin_job()
        state = _state(tmp_path, [builtin])
        assert workload_provenance_problems(
            [_run_span(builtin, workload="art")], state
        ) == []

    def test_cache_hit_jobs_need_no_run_span(self, tmp_path):
        """A cached job never ran, so there is nothing to audit."""
        scen = _scenario_job()
        state = _state(tmp_path, [scen])
        assert workload_provenance_problems([], state) == []


class TestEngineEmitsProvenance:
    def test_mixed_fleet_run_has_full_provenance(self, tmp_path):
        """The satellite's end-to-end leg: a real engine run over a
        builtin and a catalog scenario leaves spans that pass both the
        coverage audit and the provenance audit."""
        journal = JobJournal(tmp_path / "journal", fsync=False)
        hub = TelemetryHub(out_dir=tmp_path / "journal")
        engine = ExperimentEngine(
            cache=ResultCache(tmp_path / "cache"),
            journal=journal,
            telemetry=hub,
        )
        jobs = [
            make_job("art", max_instructions=2_000,
                     warmup_instructions=200),
            make_job("scenario:stride-flip", max_instructions=2_000,
                     warmup_instructions=200),
        ]
        outcomes = engine.run(jobs)
        assert all(o.result is not None for o in outcomes)

        state = journal.recover()
        spans = hub.spans()
        assert spans_cover_journal(spans, state) == []
        assert workload_provenance_problems(spans, state) == []

        sources = {
            s["fields"]["workload"]: s["fields"]["source"]
            for s in spans
            if s.get("name") == "run"
        }
        assert sources == {"art": "builtin", "stride-flip": "scenario"}
