"""Tests for prefetch insertion (section 3.4.2-3) and repair (3.5)."""

import pytest

from repro.core.classify import classify_loads, collect_loads
from repro.core.distance import (
    DISTANCE_CAP,
    estimate_distance,
    max_distance,
)
from repro.core.groups import build_groups
from repro.core.insertion import (
    insert_prefetches,
    make_stride_record,
    plan_group_offsets,
)
from repro.core.repair import (
    LATENCY_INCREASE_TOLERANCE,
    PrefetchRecord,
    repair,
)
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.registers import OPTIMIZER_SCRATCH_REGISTERS
from repro.trident.trace import TraceInstruction


def ti(opcode, **kwargs):
    t = TraceInstruction(inst=Instruction(opcode, **kwargs), orig_pc=0)
    return t


def body_with_pcs(instrs):
    for pc, t in enumerate(instrs):
        t.orig_pc = pc
    return instrs


class TestPlanOffsets:
    def test_single_offset(self):
        assert plan_group_offsets([8], 64) == [8]

    def test_within_line_skipped_with_extra_block(self):
        # Offsets 0, 8, 16 share a line: one prefetch plus the extra
        # block for the skipped loads (paper's straddle rule).
        assert plan_group_offsets([0, 8, 16], 64) == [0, 64]

    def test_far_offsets_each_prefetched(self):
        assert plan_group_offsets([0, 128, 4096], 64) == [0, 128, 4096]

    def test_mixed_skip_then_far(self):
        # 0 and 8 share; the skipped 8 triggers the extra block before
        # the far offset's own prefetch.
        assert plan_group_offsets([0, 8, 256], 64) == [0, 64, 256]

    def test_exactly_line_apart_not_skipped(self):
        assert plan_group_offsets([0, 64], 64) == [0, 64]

    def test_empty(self):
        assert plan_group_offsets([], 64) == []


class TestMakeStrideRecord:
    def make_group(self, delinquent_pcs, disps):
        body = body_with_pcs(
            [ti(Opcode.LDQ, rd=2 + i, ra=1, disp=d) for i, d in enumerate(disps)]
            + [ti(Opcode.LDA, rd=1, ra=1, disp=64),
               ti(Opcode.BNE, ra=7, target=0)]
        )
        loads = collect_loads(body)
        classify_loads(body, loads, set(delinquent_pcs), dlt=None)
        return build_groups(loads)[0]

    def test_record_fields(self):
        group = self.make_group({0, 1}, [0, 8])
        record = make_stride_record(group, distance=1, line_size=64)
        assert record.stride == 64
        assert record.base_offsets == (0, 64)
        assert record.kind == "stride"

    def test_uncovered_members_not_bound(self):
        # Only pc 0 delinquent; pc 1 at disp 256 is not covered by the
        # plan, so it must not be bound to the record.
        group = self.make_group({0}, [0, 256])
        record = make_stride_record(group, distance=1, line_size=64)
        assert record.base_offsets == (0,)
        assert record.load_pcs == (0,)


class TestInsertPrefetches:
    def stride_body(self):
        return body_with_pcs([
            ti(Opcode.LDQ, rd=2, ra=1, disp=0),
            ti(Opcode.LDQ, rd=3, ra=1, disp=8),
            ti(Opcode.LDA, rd=1, ra=1, disp=64),
            ti(Opcode.BNE, ra=7, target=0),
        ])

    def test_stride_prefetch_inserted_before_first_member(self):
        body = self.stride_body()
        loads = collect_loads(body)
        classify_loads(body, loads, {0, 1}, dlt=None)
        group = build_groups(loads)[0]
        record = make_stride_record(group, distance=2, line_size=64)
        new_body, records = insert_prefetches(body, [(group, record)], [])
        assert new_body[0].inst.opcode is Opcode.PREFETCH
        assert new_body[0].synthetic
        # offset 0 + stride 64 * distance 2
        assert new_body[0].inst.disp == 128
        assert records[0] is record and records[1] is record

    def test_pointer_prefetch_inserted_after_load(self):
        body = body_with_pcs([
            ti(Opcode.LDQ, rd=1, ra=1, disp=0),   # chase
            ti(Opcode.ADDQ, rd=5, ra=5, imm=1),
            ti(Opcode.BNE, ra=7, target=0),
        ])
        loads = collect_loads(body)
        classify_loads(body, loads, {0}, dlt=None)
        new_body, records = insert_prefetches(body, [], [loads[0]])
        opcodes = [t.inst.opcode for t in new_body]
        i = opcodes.index(Opcode.LDQ_NF)
        assert opcodes[i + 1] is Opcode.PREFETCH
        assert new_body[i].inst.rd in OPTIMIZER_SCRATCH_REGISTERS
        assert new_body[i].synthetic
        assert records[0].kind == "pointer"

    def test_original_instructions_preserved_in_order(self):
        body = self.stride_body()
        loads = collect_loads(body)
        classify_loads(body, loads, {0, 1}, dlt=None)
        group = build_groups(loads)[0]
        record = make_stride_record(group, 1, 64)
        new_body, _ = insert_prefetches(body, [(group, record)], [])
        originals = [t for t in new_body if not t.synthetic]
        assert [t.orig_pc for t in originals] == [0, 1, 2, 3]


class TestDistance:
    def test_estimate_rounds(self):
        assert estimate_distance(350, 100) == 4
        assert estimate_distance(350, 350) == 1
        assert estimate_distance(350, 10) == 35

    def test_estimate_clamps(self):
        assert estimate_distance(100000, 1) == DISTANCE_CAP
        assert estimate_distance(1, 1000) == 1

    def test_estimate_without_timing_is_one(self):
        assert estimate_distance(350, None) == 1
        assert estimate_distance(350, 0) == 1

    def test_max_distance(self):
        assert max_distance(350, 35.0) == 10
        assert max_distance(350, None) == 2
        assert max_distance(350, 1.0) == DISTANCE_CAP


class TestRepair:
    def make_record(self, distance=1, max_d=20):
        inst = Instruction(Opcode.PREFETCH, ra=1, disp=64)
        record = PrefetchRecord(
            group_key=(0,),
            load_pcs=(0,),
            base_reg=1,
            stride=64,
            distance=distance,
            base_offsets=(0,),
            instructions=[inst],
            max_distance=max_d,
            repairs_left=2 * max_d,
        )
        return record, inst

    def test_first_repair_increments(self):
        record, inst = self.make_record()
        repair(record, 300.0)
        assert record.distance == 2
        assert inst.disp == 128

    def test_improving_latency_keeps_climbing(self):
        record, inst = self.make_record()
        latency = 300.0
        for _ in range(5):
            repair(record, latency)
            latency -= 40
        assert record.distance == 6
        assert inst.disp == 64 * 6

    def test_two_consecutive_increases_step_back(self):
        record, _ = self.make_record()
        repair(record, 100.0)   # d=2
        repair(record, 90.0)    # improved: d=3
        repair(record, 120.0)   # one bad sample: still climbs (d=4)
        assert record.distance == 4
        repair(record, 140.0)   # second consecutive increase: d=3
        assert record.distance == 3

    def test_single_noise_spike_does_not_unwind(self):
        record, _ = self.make_record()
        repair(record, 100.0)
        repair(record, 130.0)   # spike
        assert record.distance == 3  # still climbed

    def test_budget_exhaustion_matures(self):
        record, _ = self.make_record(max_d=2)
        record.repairs_left = 2
        repair(record, 100.0)
        assert not record.mature
        matured = repair(record, 95.0)
        assert matured and record.mature

    def test_pin_at_cap_matures(self):
        record, _ = self.make_record(distance=20, max_d=20)
        for _ in range(3):
            repair(record, 100.0)
        assert record.mature
        assert record.distance == 20

    def test_plateau_settles_at_best_observed_distance(self):
        # Latency is 50 at distance 5 and a flat 90 everywhere above:
        # the climb must eventually settle back to 5 and mature.
        record, inst = self.make_record(distance=5, max_d=30)
        for _ in range(25):
            if record.mature:
                break
            latency = 50.0 if record.distance == 5 else 90.0
            repair(record, latency)
        assert record.mature
        assert record.distance == 5
        assert inst.disp == 64 * 5

    def test_knee_oscillation_settles(self):
        # Below distance 8 latency improves as the distance grows; above
        # it rises sharply (displacement).  The search must settle at 8.
        record, inst = self.make_record(distance=1, max_d=30)
        for _ in range(40):
            if record.mature:
                break
            d = record.distance
            latency = (300.0 - 30.0 * d) if d <= 8 else 120.0 + 40 * d
            repair(record, latency)
        assert record.mature
        assert 7 <= record.distance <= 9

    def test_mature_record_is_inert(self):
        record, inst = self.make_record()
        record.mature = True
        assert repair(record, 10.0)
        assert record.distance == 1

    def test_budget_never_shrinks(self):
        record, _ = self.make_record(max_d=10)
        record.repairs_left = 15
        record.set_budget_from_max(5)
        assert record.repairs_left == 15
        record.set_budget_from_max(20)
        assert record.repairs_left == 40
        assert record.max_distance == 20

    def test_history_records_measured_distance(self):
        record, _ = self.make_record(distance=3)
        repair(record, 200.0)
        assert record.history == [(3, 200.0)]
