"""Property-based tests on the core's timing invariants."""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import MachineConfig
from repro.cpu.core import SMTCore
from repro.isa.assembler import Assembler
from repro.isa.opcodes import Opcode
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.mainmem import DataMemory


def random_loop_program(rng_ops, iters=300):
    """A loop whose body is drawn from a small op vocabulary."""
    asm = Assembler("rand")
    asm.li("r1", iters)
    asm.li("r2", 0x100000)
    asm.label("loop")
    for op in rng_ops:
        if op == 0:
            asm.ldq("r3", "r2", 0)
        elif op == 1:
            asm.addq("r4", "r4", imm=1)
        elif op == 2:
            asm.mulf("r5", "r5", rb="r5")
        elif op == 3:
            asm.stq("r4", "r2", 8)
        elif op == 4:
            asm.lda("r2", "r2", 64)
        else:
            asm.xor("r6", "r6", rb="r4")
    asm.subq("r1", "r1", imm=1)
    asm.bne("r1", "loop")
    asm.halt()
    return asm.build()


def run(program, budget=20_000, **config_overrides):
    config = dataclasses.replace(MachineConfig(), **config_overrides)
    core = SMTCore(
        program, DataMemory(), MemoryHierarchy(config), config
    )
    core.run(budget)
    return core


ops_strategy = st.lists(
    st.integers(min_value=0, max_value=5), min_size=1, max_size=12
)


class TestTimingInvariants:
    @given(ops_strategy)
    @settings(max_examples=15, deadline=None)
    def test_cycles_positive_and_bounded_below_by_issue(self, ops):
        core = run(random_loop_program(ops))
        committed = core.stats.committed
        assert committed > 0
        # Cannot beat the issue width.
        assert core.cycles >= committed / MachineConfig().issue_width - 1

    @given(ops_strategy)
    @settings(max_examples=10, deadline=None)
    def test_deterministic(self, ops):
        a = run(random_loop_program(ops))
        b = run(random_loop_program(ops))
        assert a.cycles == b.cycles
        assert a.ctx.regs == b.ctx.regs

    @given(ops_strategy)
    @settings(max_examples=10, deadline=None)
    def test_faster_memory_never_slower(self, ops):
        slow = run(random_loop_program(ops), memory_latency=350)
        fast = run(random_loop_program(ops), memory_latency=50)
        assert fast.cycles <= slow.cycles + 1

    @given(ops_strategy)
    @settings(max_examples=10, deadline=None)
    def test_wider_issue_never_slower(self, ops):
        narrow = run(random_loop_program(ops), issue_width=2)
        wide = run(random_loop_program(ops), issue_width=8)
        assert wide.cycles <= narrow.cycles + 1

    @given(ops_strategy)
    @settings(max_examples=10, deadline=None)
    def test_snapshot_monotonic(self, ops):
        program = random_loop_program(ops, iters=2_000)
        config = MachineConfig()
        core = SMTCore(
            program, DataMemory(), MemoryHierarchy(config), config
        )
        last_c, last_t = 0, 0.0
        for step in range(5):
            core.run((step + 1) * 1_000)
            c, t = core.snapshot()
            assert c >= last_c
            assert t >= last_t
            last_c, last_t = c, t
