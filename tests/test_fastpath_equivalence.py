"""Differential proof that the decoded fast path is a pure optimization.

``SMTCore`` has two interpreters: the reference stepper
(``_run_slow`` / ``_step_original`` / ``_step_trace``) and the decoded
fast path (``fastpath.py`` handler closures plus batched basic blocks).
Everything observable must be byte-identical between them:

* the full ``SimulationResult.to_dict()`` payload, for every registered
  workload and every prefetch policy,
* windowed IPC samples and the observer's metrics snapshot,
* the structured event stream (compared through the JSONL exporter, the
  same byte-for-byte comparison the determinism tests use),
* cached engine replays (``fast`` is part of the cache key, so a cached
  slow-path result can never masquerade as a fast-path one).

Budgets are small — the point is coverage of every workload's opcode
mix and every policy's hook traffic, not statistical weight.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from conftest import simple_stride_program
from repro.config import MachineConfig, PrefetchPolicy
from repro.cpu.core import SMTCore
from repro.harness.cache import ResultCache
from repro.harness.engine import ExperimentEngine, make_job
from repro.harness.runner import run_simulation
from repro.memory.hierarchy import MemoryHierarchy
from repro.hwprefetch.zoo import zoo_names
from repro.memory.mainmem import DataMemory
from repro.obs import Observer
from repro.obs.export import write_jsonl
from repro.workloads import BENCHMARK_NAMES

BUDGET = 2_000
WARMUP = 500
POLICY_SWEEP_WORKLOADS = ["mcf", "swim"]

#: Every selectable policy: the paper's enum plus the hardware-
#: prefetcher zoo (zoo engines hook the hierarchy, not the
#: interpreters, so fast/slow identity must hold for them too).
ALL_POLICIES = list(PrefetchPolicy) + list(zoo_names())


def _policy_id(policy) -> str:
    return policy.value if isinstance(policy, PrefetchPolicy) else policy


def _canon(result) -> str:
    # No sort_keys: dict ordering is part of the payload contract.
    return json.dumps(result.to_dict())


def _run(name, fast, **kwargs):
    kwargs.setdefault("max_instructions", BUDGET)
    kwargs.setdefault("warmup_instructions", WARMUP)
    return run_simulation(name, fast=fast, **kwargs)


class TestEveryWorkload:
    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_payload_identical(self, name):
        slow = _run(name, fast=False)
        fast = _run(name, fast=True)
        assert _canon(fast) == _canon(slow)


class TestEveryPolicy:
    @pytest.mark.parametrize("name", POLICY_SWEEP_WORKLOADS)
    @pytest.mark.parametrize("policy", ALL_POLICIES, ids=_policy_id)
    def test_payload_identical(self, name, policy):
        slow = _run(name, fast=False, policy=policy)
        fast = _run(name, fast=True, policy=policy)
        assert _canon(fast) == _canon(slow)


class TestObservability:
    def test_samples_identical(self):
        slow = _run("swim", fast=False, sample_interval=500)
        fast = _run("swim", fast=True, sample_interval=500)
        assert _canon(fast) == _canon(slow)

    def test_event_stream_identical(self, tmp_path):
        paths = {}
        for fast in (False, True):
            obs = Observer()
            _run("mcf", fast=fast, observer=obs,
                 policy=PrefetchPolicy.SELF_REPAIRING)
            path = tmp_path / f"events_fast={fast}.jsonl"
            write_jsonl(obs.events(), str(path))
            paths[fast] = path
        assert paths[True].read_bytes() == paths[False].read_bytes()

    def test_metrics_snapshot_identical(self):
        snapshots = {}
        for fast in (False, True):
            obs = Observer(sample_interval=500)
            _run("mcf", fast=fast, observer=obs,
                 policy=PrefetchPolicy.SELF_REPAIRING)
            snapshots[fast] = json.dumps(obs.snapshot(), sort_keys=True)
        assert snapshots[True] == snapshots[False]


class TestChunkedRuns:
    """``run(drain=False)`` at chunk boundaries must be invisible.

    The interval sampler stops the core mid-run to take a window sample
    and resumes; the fast path's batched blocks may be mid-flight when a
    chunk budget lands.  Chunked and unchunked runs must leave bit-equal
    core, cache, and stats state — on both interpreters, and across
    them.
    """

    BUDGET = 2_000

    @staticmethod
    def _fresh_core(fast):
        config = MachineConfig()
        memory = DataMemory()
        hierarchy = MemoryHierarchy(config)
        program = simple_stride_program(iters=5_000, stride=24)
        core = SMTCore(program, memory, hierarchy, config, fast=fast)
        return core, memory, hierarchy

    @classmethod
    def _state(cls, core, memory, hierarchy):
        return {
            "regs": list(core.ctx.regs),
            "pc": core.ctx.pc,
            "halted": core.ctx.halted,
            "cycles": core.cycles,
            "stats": dataclasses.asdict(core.stats),
            "mem_stats": dataclasses.asdict(hierarchy.stats),
            "l1_lines": sorted(
                line for bucket in hierarchy.l1._sets.values()
                for line in bucket
            ),
            "unmapped_reads": memory.unmapped_reads,
        }

    @classmethod
    def _run_chunked(cls, fast, chunk):
        core, memory, hierarchy = cls._fresh_core(fast)
        # Cumulative budgets, mirroring the sampler's stop/resume loop;
        # only the final call drains.
        for stop in range(chunk, cls.BUDGET, chunk):
            core.run(stop, drain=False)
        core.run(cls.BUDGET, drain=True)
        return cls._state(core, memory, hierarchy)

    @classmethod
    def _run_unchunked(cls, fast):
        core, memory, hierarchy = cls._fresh_core(fast)
        core.run(cls.BUDGET, drain=True)
        return cls._state(core, memory, hierarchy)

    @pytest.mark.parametrize("fast", [True, False], ids=["fast", "slow"])
    # 250 lands on block boundaries of the 4-instruction loop; 333 lands
    # mid-block, forcing the fast path's clamp fallback.
    @pytest.mark.parametrize("chunk", [250, 333])
    def test_chunked_equals_unchunked(self, fast, chunk):
        assert self._run_chunked(fast, chunk) == self._run_unchunked(fast)

    def test_chunked_fast_equals_unchunked_slow(self):
        assert self._run_chunked(True, 333) == self._run_unchunked(False)


class TestEngineCaching:
    def _jobs(self, fast):
        return [
            make_job(
                name, policy=PrefetchPolicy.SELF_REPAIRING,
                max_instructions=BUDGET, warmup_instructions=WARMUP,
                fast=fast,
            )
            for name in POLICY_SWEEP_WORKLOADS
        ]

    def test_fast_flag_is_part_of_cache_key(self, tmp_path):
        cache = ResultCache(tmp_path)
        engine = ExperimentEngine(workers=1, cache=cache)
        engine.run_all(self._jobs(fast=True))
        engine.run_all(self._jobs(fast=False))
        # Four distinct simulations: the slow jobs must not replay the
        # fast jobs' cached results (or vice versa).
        assert engine.stats.jobs_run == 4
        assert engine.stats.jobs_cached == 0

    def test_cached_replay_identical_across_paths(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = ExperimentEngine(workers=1, cache=cache)
        fresh_fast = [_canon(r) for r in first.run_all(self._jobs(True))]
        fresh_slow = [_canon(r) for r in first.run_all(self._jobs(False))]
        assert fresh_fast == fresh_slow

        replay = ExperimentEngine(workers=1, cache=cache)
        replay_fast = [_canon(r) for r in replay.run_all(self._jobs(True))]
        replay_slow = [_canon(r) for r in replay.run_all(self._jobs(False))]
        assert replay.stats.jobs_cached == 4
        assert replay_fast == fresh_fast
        assert replay_slow == fresh_slow
