"""Tests for the classical trace optimizations (Trident base opts)."""

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.trident.optimizations import optimize_trace_body
from repro.trident.trace import TraceInstruction


def ti(opcode, **kwargs):
    return TraceInstruction(inst=Instruction(opcode, **kwargs), orig_pc=0)


def ops(body):
    return [t.inst.opcode for t in body]


class TestRedundantLoadRemoval:
    def test_second_identical_load_becomes_move(self):
        body = [
            ti(Opcode.LDQ, rd=2, ra=1, disp=8),
            ti(Opcode.ADDQ, rd=3, ra=2, imm=1),
            ti(Opcode.LDQ, rd=4, ra=1, disp=8),
        ]
        out, counts = optimize_trace_body(body)
        assert counts["redundant_loads_removed"] == 1
        assert out[2].inst.opcode is Opcode.MOVE
        assert out[2].inst.ra == 2
        assert out[2].inst.rd == 4

    def test_base_redefinition_blocks_removal(self):
        body = [
            ti(Opcode.LDQ, rd=2, ra=1, disp=8),
            ti(Opcode.LDA, rd=1, ra=1, disp=64),
            ti(Opcode.LDQ, rd=4, ra=1, disp=8),
        ]
        out, counts = optimize_trace_body(body)
        assert counts["redundant_loads_removed"] == 0
        assert ops(out).count(Opcode.LDQ) == 2

    def test_value_clobber_blocks_removal(self):
        body = [
            ti(Opcode.LDQ, rd=2, ra=1, disp=8),
            ti(Opcode.LDA, rd=2, ra=31, disp=0),  # clobbers r2
            ti(Opcode.LDQ, rd=4, ra=1, disp=8),
        ]
        out, counts = optimize_trace_body(body)
        assert counts["redundant_loads_removed"] == 0

    def test_intervening_store_blocks_removal(self):
        body = [
            ti(Opcode.LDQ, rd=2, ra=1, disp=8),
            ti(Opcode.STQ, rd=5, ra=6, disp=0),   # unknown alias
            ti(Opcode.LDQ, rd=4, ra=1, disp=8),
        ]
        out, counts = optimize_trace_body(body)
        assert counts["redundant_loads_removed"] == 0

    def test_different_disp_not_removed(self):
        body = [
            ti(Opcode.LDQ, rd=2, ra=1, disp=8),
            ti(Opcode.LDQ, rd=4, ra=1, disp=16),
        ]
        out, counts = optimize_trace_body(body)
        assert counts["redundant_loads_removed"] == 0

    def test_self_chase_load_never_forwarded(self):
        body = [
            ti(Opcode.LDQ, rd=1, ra=1, disp=0),
            ti(Opcode.LDQ, rd=2, ra=1, disp=0),
        ]
        out, counts = optimize_trace_body(body)
        # The first load redefines its own base: no fact survives.
        assert counts["redundant_loads_removed"] == 0


class TestStoreLoadForwarding:
    def test_store_then_load_becomes_move(self):
        body = [
            ti(Opcode.STQ, rd=2, ra=1, disp=8),
            ti(Opcode.LDQ, rd=4, ra=1, disp=8),
        ]
        out, counts = optimize_trace_body(body)
        assert counts["store_load_forwarded"] == 1
        assert out[1].inst.opcode is Opcode.MOVE
        assert out[1].inst.ra == 2

    def test_store_invalidates_previous_facts(self):
        body = [
            ti(Opcode.LDQ, rd=2, ra=1, disp=8),
            ti(Opcode.STQ, rd=5, ra=3, disp=0),
            ti(Opcode.LDQ, rd=4, ra=1, disp=8),
        ]
        out, counts = optimize_trace_body(body)
        assert counts["redundant_loads_removed"] == 0


class TestConstantFolding:
    def test_li_chain_folds(self):
        body = [
            ti(Opcode.LDA, rd=1, ra=31, disp=100),
            ti(Opcode.ADDQ, rd=2, ra=1, imm=5),
        ]
        out, counts = optimize_trace_body(body)
        assert counts["constants_folded"] == 1
        assert out[1].inst.opcode is Opcode.LDA
        assert out[1].inst.disp == 105

    def test_register_rhs_folds_when_known(self):
        body = [
            ti(Opcode.LDA, rd=1, ra=31, disp=6),
            ti(Opcode.LDA, rd=2, ra=31, disp=7),
            ti(Opcode.MULQ, rd=3, ra=1, rb=2),
        ]
        out, counts = optimize_trace_body(body)
        assert counts["constants_folded"] == 1
        assert out[2].inst.disp == 42

    def test_unknown_source_blocks_fold(self):
        body = [
            ti(Opcode.ADDQ, rd=2, ra=1, imm=5),
        ]
        out, counts = optimize_trace_body(body)
        assert counts["constants_folded"] == 0

    def test_redefinition_kills_constant(self):
        body = [
            ti(Opcode.LDA, rd=1, ra=31, disp=100),
            ti(Opcode.LDQ, rd=1, ra=3, disp=0),   # r1 now unknown
            ti(Opcode.ADDQ, rd=2, ra=1, imm=5),
        ]
        out, counts = optimize_trace_body(body)
        assert counts["constants_folded"] == 0


class TestStrengthReduction:
    def test_mul_by_power_of_two_becomes_shift(self):
        body = [ti(Opcode.MULQ, rd=2, ra=1, imm=8)]
        out, counts = optimize_trace_body(body)
        assert counts["strength_reduced"] == 1
        assert out[0].inst.opcode is Opcode.SLL
        assert out[0].inst.imm == 3

    def test_mul_by_non_power_untouched(self):
        body = [ti(Opcode.MULQ, rd=2, ra=1, imm=6)]
        out, counts = optimize_trace_body(body)
        assert counts["strength_reduced"] == 0

    def test_mul_by_register_untouched(self):
        body = [ti(Opcode.MULQ, rd=2, ra=1, rb=3)]
        out, counts = optimize_trace_body(body)
        assert counts["strength_reduced"] == 0


class TestSemanticsPreserved:
    def test_optimized_trace_computes_same_result(self):
        """Run original vs optimized straight-line code functionally."""
        from repro.cpu.context import ThreadContext
        from repro.cpu.executor import Executor
        from repro.memory.mainmem import DataMemory

        body = [
            ti(Opcode.LDA, rd=1, ra=31, disp=0x1000),
            ti(Opcode.LDA, rd=5, ra=31, disp=4),
            ti(Opcode.MULQ, rd=5, ra=5, imm=16),
            ti(Opcode.STQ, rd=5, ra=1, disp=8),
            ti(Opcode.LDQ, rd=6, ra=1, disp=8),
            ti(Opcode.LDQ, rd=7, ra=1, disp=8),
            ti(Opcode.ADDQ, rd=8, ra=6, rb=7),
        ]
        optimized, counts = optimize_trace_body([t.copy() for t in body])
        assert sum(counts.values()) > 0

        def run(instrs):
            mem = DataMemory()
            ctx = ThreadContext()
            executor = Executor(mem)
            for t in instrs:
                executor.execute(t.inst, ctx)
            return ctx.regs[8]

        assert run(body) == run(optimized) == 128
