"""Tests for the Markov predictor and Markov-guided stream buffers."""

import random
from collections import OrderedDict

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import MachineConfig, StreamBufferConfig
from repro.hwprefetch.markov import MarkovPredictor
from repro.hwprefetch.stream_buffer import StreamBufferPrefetcher
from repro.memory.hierarchy import MemoryHierarchy


class TestMarkovPredictor:
    def test_learns_transitions(self):
        m = MarkovPredictor(16)
        for block in (0, 64, 512, 64, 512):
            m.train(block)
        assert m.predict(0) == 64
        assert m.predict(64) == 512

    def test_latest_transition_wins(self):
        m = MarkovPredictor(16)
        for block in (0, 64, 0, 128):
            m.train(block)
        assert m.predict(0) == 128

    def test_lru_bounded(self):
        m = MarkovPredictor(entries=4)
        for i in range(20):
            m.train(i * 64)
        assert len(m) <= 4

    def test_self_transition_ignored(self):
        m = MarkovPredictor(4)
        m.train(64)
        m.train(64)
        assert m.predict(64) is None

    def test_requires_positive_entries(self):
        with pytest.raises(ValueError):
            MarkovPredictor(0)


class TestMarkovEvictionOrder:
    """The table is LRU on *use*: training a source refreshes it, and a
    successful prediction refreshes it too.  Eviction must always claim
    the least-recently-used source — these pin that order."""

    def test_oldest_source_evicted_first(self):
        m = MarkovPredictor(entries=3)
        for block in (0, 64, 128, 192, 256):  # sources 0, 64, 128, 192
            m.train(block)
        # Capacity 3: adding source 192 evicted source 0, nothing else.
        assert m.predict(0) is None
        assert m.predict(64) == 128
        assert m.predict(128) == 192
        assert m.predict(192) == 256

    def test_predict_refreshes_recency(self):
        m = MarkovPredictor(entries=2)
        for block in (0, 64, 128):  # table: 0 -> 64, 64 -> 128
            m.train(block)
        assert m.predict(0) == 64  # touch source 0: now MRU
        m.train(192)  # adds 128 -> 192; evicts source 64, NOT source 0
        assert m.predict(0) == 64
        assert m.predict(64) is None

    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(("train", "predict")),
                st.integers(min_value=0, max_value=11).map(lambda i: i * 64),
            ),
            min_size=1,
            max_size=80,
        ),
        entries=st.integers(min_value=1, max_value=5),
    )
    @settings(deadline=None)
    def test_matches_lru_specification(self, ops, entries):
        """Model-based property: against an explicit LRU reference
        (insert/refresh source on train, refresh on predict hit, evict
        oldest past capacity), every prediction and the final table
        contents agree on arbitrary op sequences."""
        m = MarkovPredictor(entries)
        ref: OrderedDict = OrderedDict()
        last = None
        for op, block in ops:
            if op == "train":
                prev, last = last, block
                m.train(block)
                if prev is not None and prev != block:
                    ref[prev] = block
                    ref.move_to_end(prev)
                    while len(ref) > entries:
                        ref.popitem(last=False)
            else:
                expected = ref.get(block)
                if expected is not None:
                    ref.move_to_end(block)
                assert m.predict(block) == expected
        assert len(m) == len(ref)
        for source, target in ref.items():
            assert m.predict(source) == target


class TestMarkovStreamBuffers:
    def make(self, markov_entries):
        machine = MachineConfig()
        config = StreamBufferConfig(markov_entries=markov_entries)
        hier = MemoryHierarchy(machine)
        sb = StreamBufferPrefetcher(config, hier, machine.line_size)
        hier.stream_prefetcher = sb
        return hier, sb

    def walk(self, hier, blocks, laps=3, step=500):
        cycle = 0
        for _ in range(laps):
            for block in blocks:
                hier.load(9, block, cycle)
                cycle += step
        return cycle

    def test_disabled_by_default(self):
        hier, sb = self.make(0)
        assert sb.markov is None
        # The Table-1 default config has no Markov table either.
        assert StreamBufferConfig.paper_8x8().markov_entries == 0

    def test_irregular_walk_covered_with_markov(self):
        # The ring must exceed the L1 so laps keep missing.
        rng = random.Random(3)
        blocks = [rng.randrange(1 << 18) * 64 for _ in range(2_500)]
        hier, sb = self.make(4096)
        self.walk(hier, blocks, laps=1)      # train transitions
        before = sb.allocations
        self.walk(hier, blocks, laps=2)      # now predictable
        assert sb.allocations > before        # markov buffers allocated
        assert sb.stream_hits > 0

    def test_irregular_walk_uncovered_without_markov(self):
        rng = random.Random(3)
        blocks = [rng.randrange(1 << 18) * 64 for _ in range(2_500)]
        hier, sb = self.make(0)
        self.walk(hier, blocks, laps=3)
        assert sb.allocations == 0
        assert sb.stream_hits == 0

    def test_markov_training_is_stride_filtered(self):
        hier, sb = self.make(4096)
        addr = 0x100000
        for i in range(60):
            hier.load(9, addr, i * 400)
            addr += 64
        # A pure stride stream must not pollute the Markov table once the
        # stride predictor is confident.
        assert len(sb.markov) < 8
