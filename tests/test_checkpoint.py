"""Unit and property tests for the checkpoint subsystem.

The load-bearing property is **capture idempotence**: capturing a run,
restoring it, and capturing again must produce identical bytes — if it
did not, either restore loses state or the serialisation is not
canonical, and either way resumed runs could diverge.  The sweep covers
every workload (under the richest policy) and every policy (on two
workloads of opposite memory character), mirroring the fastpath
equivalence grid.

Corruption must degrade, never crash: a truncated or tampered snapshot
raises :class:`CheckpointError` from the parser, and the engine treats
any unusable checkpoint as a miss and runs cold.
"""

from __future__ import annotations

import json
import zlib

import pytest

from repro.checkpoint import (
    FORMAT_VERSION,
    CheckpointStore,
    Snapshot,
    capture,
    is_quiescent,
    prune,
    restore,
    scan_usage,
)
from repro.config import PrefetchPolicy, SimulationConfig
from repro.errors import CheckpointError
from repro.harness.engine import ExperimentEngine, make_job
from repro.harness.runner import Simulation
from repro.workloads.registry import BENCHMARK_NAMES

BUDGET = 1_500
WARMUP = 400

#: Two workloads of opposite memory character (pointer chase vs stream)
#: carry the full-policy axis of the sweep.
POLICY_SWEEP_WORKLOADS = ["mcf", "swim"]


def _run_sim(name, policy, **overrides):
    overrides.setdefault("max_instructions", BUDGET)
    overrides.setdefault("warmup_instructions", WARMUP)
    sim = Simulation(name, SimulationConfig(policy=policy, **overrides))
    sim.run()
    return sim


def _assert_idempotent(name, policy):
    sim = _run_sim(name, policy)
    first = capture(sim)
    second = capture(restore(first))
    assert first.header == second.header
    assert first.payload == second.payload
    assert first.to_bytes() == second.to_bytes()


class TestCaptureIdempotence:
    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_every_workload(self, name):
        _assert_idempotent(name, PrefetchPolicy.SELF_REPAIRING)

    @pytest.mark.parametrize("policy", list(PrefetchPolicy))
    @pytest.mark.parametrize("name", POLICY_SWEEP_WORKLOADS)
    def test_every_policy(self, name, policy):
        _assert_idempotent(name, policy)

    def test_frame_roundtrip(self):
        sim = _run_sim("art", PrefetchPolicy.SELF_REPAIRING)
        snapshot = capture(sim)
        parsed = Snapshot.from_bytes(snapshot.to_bytes())
        assert parsed.header == snapshot.header
        assert parsed.payload == snapshot.payload
        assert parsed.committed == sim.core.stats.committed

    def test_fault_free_runs_are_always_quiescent(self):
        sim = _run_sim("mcf", PrefetchPolicy.SELF_REPAIRING)
        assert sim.injector is None
        assert is_quiescent(sim)


class TestCorruption:
    @pytest.fixture(scope="class")
    def frame(self):
        sim = _run_sim("art", PrefetchPolicy.SELF_REPAIRING)
        return capture(sim)

    def test_truncation_raises_everywhere(self, frame):
        data = frame.to_bytes()
        for cut in (0, 2, 4, 7, 40, len(data) // 2, len(data) - 1):
            with pytest.raises(CheckpointError):
                Snapshot.from_bytes(data[:cut])

    def test_bad_magic_raises(self):
        with pytest.raises(CheckpointError):
            Snapshot.from_bytes(b"NOPE" + b"\x00" * 64)

    def test_unknown_format_raises(self, frame):
        header = dict(frame.header, format=FORMAT_VERSION + 1)
        data = Snapshot(header=header, payload=frame.payload).to_bytes()
        with pytest.raises(CheckpointError):
            Snapshot.from_bytes(data)

    def test_stale_code_version_refuses_restore(self, frame):
        tampered = Snapshot(
            header=dict(frame.header, code_version="0" * 64),
            payload=frame.payload,
        )
        with pytest.raises(CheckpointError):
            restore(tampered)

    def test_garbage_payload_refuses_restore(self, frame):
        garbage = zlib.compress(b"not a pickle")
        tampered = Snapshot(
            header=dict(frame.header, payload_bytes=len(garbage)),
            payload=garbage,
        )
        with pytest.raises(CheckpointError):
            restore(tampered)

    def test_engine_runs_cold_off_truncated_checkpoints(self, tmp_path):
        """An unusable stored snapshot is a miss, not a crash."""
        job = make_job(
            "art",
            policy=PrefetchPolicy.SELF_REPAIRING,
            max_instructions=1_000,
            warmup_instructions=WARMUP,
        )
        seeded = ExperimentEngine(
            cache=None, checkpoints=CheckpointStore(tmp_path)
        )
        seeded.run([job], isolate=False)
        ckpts = list((tmp_path / "checkpoints").rglob("*.ckpt"))
        assert ckpts
        for path in ckpts:
            path.write_bytes(path.read_bytes()[:50])

        longer = make_job(
            "art",
            policy=PrefetchPolicy.SELF_REPAIRING,
            max_instructions=2_000,
            warmup_instructions=WARMUP,
        )
        engine = ExperimentEngine(
            cache=None, checkpoints=CheckpointStore(tmp_path)
        )
        outcome = engine.run([longer], isolate=False)[0]
        assert outcome.resumed_from is None
        assert engine.stats.jobs_resumed == 0

        cold = Simulation(
            "art",
            SimulationConfig(
                policy=PrefetchPolicy.SELF_REPAIRING,
                max_instructions=2_000,
                warmup_instructions=WARMUP,
            ),
        ).run()
        assert json.dumps(outcome.result.to_dict()) == json.dumps(
            cold.to_dict()
        )


def _fake_snapshot(committed: int) -> Snapshot:
    payload = zlib.compress(committed.to_bytes(8, "big") * 16)
    return Snapshot(
        header={
            "format": FORMAT_VERSION,
            "committed": committed,
            "cycles": committed * 2.0,
            "payload_bytes": len(payload),
        },
        payload=payload,
    )


class TestStore:
    def test_put_best_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path)
        for committed in (300, 100, 200):
            assert store.put("ab" * 32, _fake_snapshot(committed))
        assert store.committed_counts("ab" * 32) == [100, 200, 300]
        assert store.best("ab" * 32, 250).committed == 200
        assert store.best("ab" * 32, 99) is None
        assert store.best("ab" * 32, 10_000).committed == 300

    def test_put_skips_existing(self, tmp_path):
        store = CheckpointStore(tmp_path)
        assert store.put("cd" * 32, _fake_snapshot(100))
        assert not store.put("cd" * 32, _fake_snapshot(100))
        assert store.stores == 1

    def test_best_skips_corrupt_candidate(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.put("ef" * 32, _fake_snapshot(100))
        store.put("ef" * 32, _fake_snapshot(200))
        store.path_for("ef" * 32, 200).write_bytes(b"garbage")
        assert store.best("ef" * 32, 10_000).committed == 100

    def test_prefix_key_ignores_budget_and_cadence(self, tmp_path):
        store = CheckpointStore(tmp_path)

        def key(**overrides):
            return store.prefix_key(
                make_job("art", warmup_instructions=WARMUP, **overrides).spec()
            )

        base = key(max_instructions=1_000)
        assert key(max_instructions=50_000) == base
        assert key(max_instructions=1_000, checkpoint_every=500) == base
        assert key(max_instructions=1_000, seed=7) != base
        assert key(max_instructions=1_000, fast=False) != base

    def test_prune_oldest_first_and_scan(self, tmp_path):
        import os

        store = CheckpointStore(tmp_path)
        for index, committed in enumerate((100, 200, 300)):
            store.put("12" * 32, _fake_snapshot(committed))
            path = store.path_for("12" * 32, committed)
            os.utime(path, (1_000 + index, 1_000 + index))
        usage = scan_usage(tmp_path)
        assert usage["checkpoints"]["entries"] == 3
        total = usage["checkpoints"]["bytes"]
        per_file = total // 3
        deleted, freed = prune(tmp_path, total - per_file)
        assert deleted == 1
        assert freed > 0
        # Oldest mtime went first: the first-written snapshot is gone.
        assert store.committed_counts("12" * 32) == [200, 300]


class TestCadence:
    def test_checkpoint_every_marks_and_end_capture(self):
        sim = Simulation(
            "art",
            SimulationConfig(
                policy=PrefetchPolicy.SELF_REPAIRING,
                max_instructions=2_000,
                warmup_instructions=400,
                checkpoint_every=600,
            ),
        )
        committed_at = []
        def sink(s):
            committed_at.append(s.core.stats.committed)
            return True
        sim.checkpoint_sink = sink
        sim.run()
        assert committed_at == [600, 1_200, 1_800, 2_400]
        assert sim.checkpoints_captured == len(committed_at)

    def test_snapshot_normalises_capture_schedule(self):
        """Snapshots taken under different cadences are byte-identical:
        the sink and schedule are per-run-segment, not state."""
        def bytes_with(every):
            sim = Simulation(
                "art",
                SimulationConfig(
                    policy=PrefetchPolicy.SELF_REPAIRING,
                    max_instructions=1_200,
                    warmup_instructions=400,
                    checkpoint_every=every,
                ),
            )
            captured = []
            sim.checkpoint_sink = lambda s: bool(
                captured.append(capture(s))
            ) or True
            sim.run()
            return captured[-1].to_bytes()

        assert bytes_with(None) == bytes_with(700)
