"""Public API surface: the names a downstream user is promised."""

import importlib

import pytest

import repro


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.1.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_symbols(self):
        from repro import (
            BENCHMARK_NAMES,
            MachineConfig,
            PrefetchPolicy,
            Simulation,
            SimulationConfig,
            SimulationResult,
            TridentConfig,
            load_workload,
            run_simulation,
        )

        assert callable(run_simulation)
        assert len(BENCHMARK_NAMES) == 14


@pytest.mark.parametrize(
    "module",
    [
        "repro.isa",
        "repro.memory",
        "repro.hwprefetch",
        "repro.cpu",
        "repro.trident",
        "repro.core",
        "repro.workloads",
        "repro.harness",
    ],
)
class TestSubpackages:
    def test_all_exports_resolve(self, module):
        mod = importlib.import_module(module)
        assert mod.__doc__, f"{module} needs a docstring"
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name}"


class TestDocumentation:
    def test_public_classes_documented(self):
        from repro.core.optimizer import PrefetchOptimizer
        from repro.cpu.core import SMTCore
        from repro.harness.runner import Simulation, SimulationResult
        from repro.memory.hierarchy import MemoryHierarchy
        from repro.trident.dlt import DelinquentLoadTable
        from repro.trident.runtime import TridentRuntime

        for cls in (
            PrefetchOptimizer,
            SMTCore,
            Simulation,
            SimulationResult,
            MemoryHierarchy,
            DelinquentLoadTable,
            TridentRuntime,
        ):
            assert cls.__doc__ and len(cls.__doc__) > 20

    def test_repo_docs_exist(self):
        import pathlib

        root = pathlib.Path(__file__).parent.parent
        for doc in ("README.md", "DESIGN.md", "EXPERIMENTS.md", "LICENSE"):
            path = root / doc
            assert path.exists(), doc
            assert len(path.read_text()) > 200
