"""Tests for the 14 benchmark workloads."""

import pytest

from repro.isa.opcodes import Opcode
from repro.isa.registers import OPTIMIZER_SCRATCH_REGISTERS
from repro.workloads.registry import (
    BENCHMARK_NAMES,
    all_workload_names,
    load_workload,
)


class TestRegistry:
    def test_all_fourteen_present(self):
        assert len(BENCHMARK_NAMES) == 14
        assert all_workload_names() == BENCHMARK_NAMES
        # The paper's exact benchmark list (section 4.2).
        assert BENCHMARK_NAMES == [
            "applu", "art", "dot", "equake", "facerec", "fma3d",
            "galgel", "gap", "mcf", "mgrid", "parser", "swim", "vis",
            "wupwise",
        ]

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown workload"):
            load_workload("spec2077")

    def test_deterministic_build(self):
        a = load_workload("mcf", seed=3)
        b = load_workload("mcf", seed=3)
        assert len(a.program) == len(b.program)
        assert len(a.memory) == len(b.memory)
        for x, y in zip(a.program.instructions, b.program.instructions):
            assert x.opcode == y.opcode and x.disp == y.disp

    def test_seed_changes_layout(self):
        a = load_workload("dot", seed=1)
        b = load_workload("dot", seed=2)
        # Scrambled layouts differ; read the first chain head's next ptr.
        heads_differ = any(
            a.memory.read_quiet(addr) != b.memory.read_quiet(addr)
            for addr in range(0x10000, 0x10000 + 64 * 1024, 8)
        )
        assert heads_differ


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
class TestEveryWorkload:
    def test_builds_and_validates(self, name):
        workload = load_workload(name)
        workload.program.validate()
        assert workload.name == name
        assert workload.description
        assert workload.kind in {"stride", "pointer", "mixed", "irregular"}

    def test_no_reserved_registers_written(self, name):
        workload = load_workload(name)
        for inst in workload.program.instructions:
            dest = inst.destination_register()
            assert dest not in OPTIMIZER_SCRATCH_REGISTERS

    def test_has_hot_loop(self, name):
        """Every workload must contain a conditional backward branch
        (the profiler's trace-head pattern)."""
        program = load_workload(name).program
        backward = [
            pc
            for pc, inst in enumerate(program.instructions)
            if inst.is_conditional_branch and inst.target is not None
            and inst.target <= pc
        ]
        assert backward

    def test_runs_functionally(self, name):
        """Short functional run: no crashes, commits instructions."""
        from repro.config import MachineConfig, PrefetchPolicy
        from repro.harness.runner import run_simulation

        result = run_simulation(
            name, policy=PrefetchPolicy.NONE, max_instructions=3_000
        )
        assert result.instructions == 3_000
        assert result.cycles > 0
        assert result.core.loads_executed > 0
