"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("applu", "mcf", "wupwise"):
            assert name in out

    def test_run(self, capsys):
        code = main(
            ["run", "swim", "--instructions", "8000", "--warmup", "0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "IPC" in out
        assert "load outcomes" in out
        assert "swim" in out

    def test_run_policy_choice(self, capsys):
        code = main(
            [
                "run", "swim", "--policy", "none",
                "--instructions", "5000", "--warmup", "0",
            ]
        )
        assert code == 0
        assert "none" in capsys.readouterr().out

    def test_figure(self, capsys):
        code = main(
            [
                "figure", "2", "--workloads", "swim",
                "--instructions", "8000", "--warmup", "0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "swim" in out

    def test_unknown_workload_rejected(self, capsys):
        # Free-form refs (scenario:/trace:) mean the parser cannot use
        # choices=; unknown names fail as a clean ConfigError exit.
        assert main(["run", "nonesuch"]) == 2
        err = capsys.readouterr().err
        assert "unknown workload 'nonesuch'" in err

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "42"])


class TestFleetTelemetryCLI:
    ARGS = [
        "figure", "2", "--workloads", "swim",
        "--instructions", "8000", "--warmup", "0",
    ]

    def test_summary_rides_fleet_gauges(self, capsys, tmp_path):
        code = main(self.ARGS + ["--journal-dir", str(tmp_path / "j")])
        assert code == 0
        err = capsys.readouterr().err
        assert "engine: run=" in err
        assert "cached=" in err and "reclaimed=" in err

    def test_quiet_silences_the_summary(self, capsys, tmp_path):
        code = main(
            ["--quiet"]
            + self.ARGS
            + ["--journal-dir", str(tmp_path / "j")]
        )
        assert code == 0
        assert capsys.readouterr().err == ""

    def test_figure_trace_out_writes_valid_fleet_trace(
        self, capsys, tmp_path
    ):
        import json

        from repro.obs.export import validate_chrome_trace

        trace = tmp_path / "fleet.json"
        code = main(self.ARGS + ["--refresh", "--trace-out", str(trace)])
        assert code == 0
        payload = json.loads(trace.read_text())
        assert validate_chrome_trace(payload) == []
        assert payload["metadata"]["figure"] == "2"
        names = {e["name"] for e in payload["traceEvents"]}
        assert "run" in names and "commit" in names

    def test_fleet_status_reads_live_feed(self, capsys, tmp_path):
        journal_dir = tmp_path / "j"
        assert main(self.ARGS + ["--journal-dir", str(journal_dir)]) == 0
        capsys.readouterr()
        code = main(["fleet", "status", "--journal-dir", str(journal_dir)])
        assert code == 0
        out = capsys.readouterr().out
        assert "sweep" in out
        assert "jobs" in out
        assert "engine: run=" in out

    def test_fleet_status_without_feed_errors(self, capsys, tmp_path):
        code = main(
            ["fleet", "status", "--journal-dir", str(tmp_path / "empty")]
        )
        assert code == 2
        assert "no telemetry" in capsys.readouterr().err
