"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("applu", "mcf", "wupwise"):
            assert name in out

    def test_run(self, capsys):
        code = main(
            ["run", "swim", "--instructions", "8000", "--warmup", "0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "IPC" in out
        assert "load outcomes" in out
        assert "swim" in out

    def test_run_policy_choice(self, capsys):
        code = main(
            [
                "run", "swim", "--policy", "none",
                "--instructions", "5000", "--warmup", "0",
            ]
        )
        assert code == 0
        assert "none" in capsys.readouterr().out

    def test_figure(self, capsys):
        code = main(
            [
                "figure", "2", "--workloads", "swim",
                "--instructions", "8000", "--warmup", "0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "swim" in out

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "nonesuch"])

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "42"])
