"""The example scripts must at least compile and expose a main()."""

import ast
import pathlib

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
class TestExamples:
    def test_compiles(self, path):
        source = path.read_text()
        compile(source, str(path), "exec")

    def test_has_main_guard(self, path):
        tree = ast.parse(path.read_text())
        functions = {
            node.name
            for node in ast.walk(tree)
            if isinstance(node, ast.FunctionDef)
        }
        assert "main" in functions
        assert '__name__ == "__main__"' in path.read_text()

    def test_has_docstring(self, path):
        tree = ast.parse(path.read_text())
        assert ast.get_docstring(tree)


def test_at_least_five_examples():
    assert len(EXAMPLES) >= 5
