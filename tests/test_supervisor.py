"""The worker supervisor: per-job result streaming, crash reclamation,
lease expiry on hangs, structured retry, and poison quarantine."""

from __future__ import annotations

from repro.errors import PoisonJobError, classify, PERMANENT, POISON, TRANSIENT
from repro.faults.chaos import ChaosDecision, ChaosPlan, ChaosSchedule
from repro.harness.engine import make_job
from repro.harness.journal import JobJournal, job_key
from repro.harness.supervisor import RetryPolicy, WorkerSupervisor

BUDGET = 2_000
WARMUP = 200

#: Fast retries so a reclaim-and-retry round trip stays sub-second.
FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base_s=0.01)


def _job(workload="art", **overrides):
    kwargs = dict(max_instructions=BUDGET, warmup_instructions=WARMUP)
    kwargs.update(overrides)
    return make_job(workload, **kwargs)


def _forced_chaos(decisions, hang_s=5.0) -> ChaosSchedule:
    """A schedule that disturbs exactly the given (key, attempt) pairs
    (kill_rate 0 keeps every other draw clean)."""
    return ChaosSchedule(
        plan=ChaosPlan(seed=1, hang_s=hang_s), _forced=dict(decisions)
    )


def _run(supervisor, units, chaos=None, ckpt_root=None):
    keys = [[job_key(job.spec()) for job in unit] for unit in units]
    return supervisor.execute(
        units, keys, ckpt_root, True, chaos=chaos
    )


class TestHappyPath:
    def test_results_come_back_in_unit_order(self):
        supervisor = WorkerSupervisor(workers=2, retry=FAST_RETRY)
        units = [[_job("art")], [_job("dot")]]
        results = _run(supervisor, units)
        assert [len(unit) for unit in results] == [1, 1]
        assert all(outcome.ok for unit in results for outcome in unit)
        assert results[0][0].result.workload == "art"
        assert results[1][0].result.workload == "dot"
        assert supervisor.dispatches == 2
        assert supervisor.reclaimed == 0

    def test_chain_streams_all_members(self):
        supervisor = WorkerSupervisor(workers=1, retry=FAST_RETRY)
        unit = [_job(max_instructions=n) for n in (1_000, 2_000)]
        results = _run(supervisor, [unit])
        assert [outcome.ok for outcome in results[0]] == [True, True]
        # One process ran the whole chain.
        assert supervisor.dispatches == 1


class TestCrashReclaim:
    def test_pre_kill_is_reclaimed_and_retried(self, tmp_path):
        job = _job()
        key = job_key(job.spec())
        chaos = _forced_chaos({(key, 0): ChaosDecision(kill_phase="pre")})
        journal = JobJournal(tmp_path / "j", fsync=False)
        supervisor = WorkerSupervisor(
            workers=1, retry=FAST_RETRY, journal=journal
        )
        results = _run(supervisor, [[job]], chaos=chaos)
        assert results[0][0].ok
        assert supervisor.reclaimed == 1
        assert supervisor.crashes == 1
        assert supervisor.retries == 1
        assert supervisor.quarantined == 0
        record = journal.recover().jobs[key]
        assert record.state == "done"
        assert record.strikes == 1

    def test_post_kill_recovers_from_checkpoint_not_recompute(
        self, tmp_path
    ):
        """A worker killed *after* computing but before reporting left
        its end-of-run snapshot in the store: the retry resumes it
        instead of paying for the run again."""
        job = _job()
        key = job_key(job.spec())
        chaos = _forced_chaos({(key, 0): ChaosDecision(kill_phase="post")})
        supervisor = WorkerSupervisor(workers=1, retry=FAST_RETRY)
        results = _run(
            supervisor, [[job]], chaos=chaos,
            ckpt_root=str(tmp_path / "ckpt"),
        )
        outcome = results[0][0]
        assert outcome.ok
        assert supervisor.reclaimed == 1
        assert outcome.resumed_from == job.total_budget()

    def test_earlier_chain_results_survive_a_later_kill(self):
        """Per-job pipe streaming: job 0's result is parent-side before
        job 1's attempt dies, so only job 1 re-runs."""
        short, long = _job(max_instructions=1_000), _job()
        kill_key = job_key(long.spec())
        chaos = _forced_chaos(
            {(kill_key, 0): ChaosDecision(kill_phase="pre")}
        )
        streamed = []
        supervisor = WorkerSupervisor(workers=1, retry=FAST_RETRY)
        results = supervisor.execute(
            [[short, long]],
            [[job_key(short.spec()), kill_key]],
            None, True, chaos=chaos,
            on_outcome=lambda unit, pos, out: streamed.append(pos),
        )
        assert [outcome.ok for outcome in results[0]] == [True, True]
        assert supervisor.reclaimed == 1
        # Job 0 crossed the pipe exactly once; job 1 after its retry.
        assert streamed.count(0) == 1
        assert streamed.count(1) == 1


class TestLeases:
    def test_hang_expires_lease_and_reclaims(self):
        job = _job()
        key = job_key(job.spec())
        chaos = _forced_chaos(
            {(key, 0): ChaosDecision(hang=True)}, hang_s=30.0
        )
        supervisor = WorkerSupervisor(
            workers=1, lease_s=0.3, heartbeat_s=0.05, retry=FAST_RETRY
        )
        results = _run(supervisor, [[job]], chaos=chaos)
        assert results[0][0].ok
        assert supervisor.lease_expiries == 1
        assert supervisor.reclaimed == 1
        # Heartbeats flowed while the worker hung: liveness and
        # progress are separate signals.
        assert supervisor.heartbeats >= 1


class TestPoison:
    def test_repeated_strikes_quarantine_with_poison_record(self):
        job = _job()
        key = job_key(job.spec())
        chaos = _forced_chaos({
            (key, attempt): ChaosDecision(kill_phase="pre")
            for attempt in range(3)
        })
        supervisor = WorkerSupervisor(workers=1, retry=FAST_RETRY)
        results = _run(supervisor, [[job]], chaos=chaos)
        outcome = results[0][0]
        assert not outcome.ok
        assert outcome.error["type"] == "PoisonJobError"
        assert outcome.error["strikes"] == 3
        assert supervisor.quarantined == 1
        assert supervisor.reclaimed == 3

    def test_quarantine_frees_the_rest_of_the_chain(self):
        poison, innocent = _job(), _job(max_instructions=3_000)
        pkey = job_key(poison.spec())
        chaos = _forced_chaos({
            (pkey, attempt): ChaosDecision(kill_phase="pre")
            for attempt in range(3)
        })
        supervisor = WorkerSupervisor(workers=1, retry=FAST_RETRY)
        results = _run(supervisor, [[poison, innocent]], chaos=chaos)
        assert not results[0][0].ok
        assert results[0][1].ok  # the chain continued past the poison

    def test_classify_taxonomy(self):
        from repro.errors import LeaseExpiredError, WorkerCrashError

        assert classify(WorkerCrashError("x")) == TRANSIENT
        assert classify(LeaseExpiredError("x")) == TRANSIENT
        assert classify(PoisonJobError("x", strikes=3)) == POISON
        assert classify(ValueError("x")) == PERMANENT


class TestRetryPolicy:
    def test_backoff_is_deterministic_per_key(self):
        policy = RetryPolicy()
        assert policy.delay(1, "k") == policy.delay(1, "k")
        assert policy.delay(1, "k") != policy.delay(1, "other")

    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(
            backoff_base_s=0.1, backoff_factor=2.0, jitter=0.25
        )
        first, second = policy.delay(1, "k"), policy.delay(2, "k")
        assert second > first
        # Jitter stays within its +/- 25% envelope.
        assert 0.075 <= first <= 0.125
        assert 0.15 <= second <= 0.25

    def test_gauges_reflect_fleet_health(self):
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
        supervisor = WorkerSupervisor(
            workers=1, retry=FAST_RETRY, metrics=metrics
        )
        _run(supervisor, [[_job()]])
        assert metrics.gauge("fleet.dispatches").value == 1
        assert metrics.gauge("fleet.reclaimed").value == 0
        assert metrics.gauge("fleet.live_workers").value == 0
