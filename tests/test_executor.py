"""Tests for the functional executor: every opcode's semantics."""

import pytest

from repro.cpu.context import ThreadContext
from repro.cpu.executor import Executor
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.memory.mainmem import DataMemory


@pytest.fixture
def ctx():
    return ThreadContext()


@pytest.fixture
def executor():
    return Executor(DataMemory())


def run(executor, ctx, inst):
    return executor.execute(inst, ctx)


class TestMemoryOps:
    def test_load_reads_memory(self, executor, ctx):
        executor.memory.write(0x1000, 42)
        ctx.regs[1] = 0x1000
        res = run(executor, ctx, Instruction(Opcode.LDQ, rd=2, ra=1, disp=0))
        assert ctx.regs[2] == 42
        assert res.ea == 0x1000

    def test_load_with_displacement(self, executor, ctx):
        executor.memory.write(0x1010, 7)
        ctx.regs[1] = 0x1000
        run(executor, ctx, Instruction(Opcode.LDQ, rd=2, ra=1, disp=16))
        assert ctx.regs[2] == 7

    def test_unmapped_load_reads_zero_and_counts(self, executor, ctx):
        ctx.regs[1] = 0x9999000
        run(executor, ctx, Instruction(Opcode.LDQ, rd=2, ra=1, disp=0))
        assert ctx.regs[2] == 0
        assert executor.memory.unmapped_reads == 1

    def test_nonfaulting_load_does_not_count_unmapped(self, executor, ctx):
        ctx.regs[1] = 0x9999000
        run(executor, ctx, Instruction(Opcode.LDQ_NF, rd=2, ra=1, disp=0))
        assert ctx.regs[2] == 0
        assert executor.memory.unmapped_reads == 0

    def test_store_writes_memory(self, executor, ctx):
        ctx.regs[1] = 0x2000
        ctx.regs[3] = 99
        res = run(executor, ctx, Instruction(Opcode.STQ, rd=3, ra=1, disp=8))
        assert executor.memory.read(0x2008) == 99
        assert res.ea == 0x2008

    def test_prefetch_reports_ea_only(self, executor, ctx):
        ctx.regs[1] = 0x3000
        res = run(executor, ctx, Instruction(Opcode.PREFETCH, ra=1, disp=64))
        assert res.ea == 0x3040
        assert res.taken is None

    def test_load_to_zero_register_discarded(self, executor, ctx):
        executor.memory.write(0x1000, 5)
        ctx.regs[1] = 0x1000
        run(executor, ctx, Instruction(Opcode.LDQ, rd=31, ra=1, disp=0))
        assert ctx.regs[31] == 0


class TestALU:
    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            (Opcode.ADDQ, 3, 4, 7),
            (Opcode.SUBQ, 10, 4, 6),
            (Opcode.MULQ, 3, 5, 15),
            (Opcode.AND, 0b1100, 0b1010, 0b1000),
            (Opcode.OR, 0b1100, 0b1010, 0b1110),
            (Opcode.XOR, 0b1100, 0b1010, 0b0110),
            (Opcode.SLL, 1, 4, 16),
            (Opcode.SRL, 16, 2, 4),
            (Opcode.CMPEQ, 5, 5, 1),
            (Opcode.CMPEQ, 5, 6, 0),
            (Opcode.CMPLT, 4, 5, 1),
            (Opcode.CMPLT, 5, 5, 0),
            (Opcode.CMPLE, 5, 5, 1),
            (Opcode.CMPLE, 6, 5, 0),
        ],
    )
    def test_register_form(self, executor, ctx, op, a, b, expected):
        ctx.regs[1], ctx.regs[2] = a, b
        run(executor, ctx, Instruction(op, rd=3, ra=1, rb=2))
        assert ctx.regs[3] == expected

    def test_immediate_form(self, executor, ctx):
        ctx.regs[1] = 10
        run(executor, ctx, Instruction(Opcode.ADDQ, rd=2, ra=1, imm=5))
        assert ctx.regs[2] == 15

    def test_fp_ops(self, executor, ctx):
        ctx.regs[1], ctx.regs[2] = 1.5, 2.0
        run(executor, ctx, Instruction(Opcode.ADDF, rd=3, ra=1, rb=2))
        assert ctx.regs[3] == 3.5
        run(executor, ctx, Instruction(Opcode.MULF, rd=3, ra=1, rb=2))
        assert ctx.regs[3] == 3.0
        run(executor, ctx, Instruction(Opcode.SUBF, rd=3, ra=2, rb=1))
        assert ctx.regs[3] == 0.5
        run(executor, ctx, Instruction(Opcode.DIVF, rd=3, ra=1, rb=2))
        assert ctx.regs[3] == 0.75

    def test_divide_by_zero_yields_zero(self, executor, ctx):
        ctx.regs[1], ctx.regs[2] = 1.0, 0.0
        run(executor, ctx, Instruction(Opcode.DIVF, rd=3, ra=1, rb=2))
        assert ctx.regs[3] == 0.0

    def test_lda_is_address_arithmetic(self, executor, ctx):
        ctx.regs[1] = 0x100
        run(executor, ctx, Instruction(Opcode.LDA, rd=2, ra=1, disp=-8))
        assert ctx.regs[2] == 0xF8

    def test_writes_to_zero_register_discarded(self, executor, ctx):
        ctx.regs[1] = 7
        run(executor, ctx, Instruction(Opcode.ADDQ, rd=31, ra=1, imm=1))
        assert ctx.regs[31] == 0


class TestControlFlow:
    @pytest.mark.parametrize(
        "op,value,taken",
        [
            (Opcode.BEQ, 0, True),
            (Opcode.BEQ, 1, False),
            (Opcode.BNE, 0, False),
            (Opcode.BNE, 1, True),
            (Opcode.BLT, -1, True),
            (Opcode.BLT, 0, False),
            (Opcode.BGE, 0, True),
            (Opcode.BGE, -1, False),
        ],
    )
    def test_conditional_directions(self, executor, ctx, op, value, taken):
        ctx.regs[1] = value
        res = run(executor, ctx, Instruction(op, ra=1, target=10))
        assert res.taken is taken

    def test_br_always_taken(self, executor, ctx):
        res = run(executor, ctx, Instruction(Opcode.BR, target=5))
        assert res.taken is True

    def test_jmp_reports_target(self, executor, ctx):
        ctx.regs[1] = 42
        res = run(executor, ctx, Instruction(Opcode.JMP, ra=1))
        assert res.jump_target == 42

    def test_halt_sets_flag(self, executor, ctx):
        res = run(executor, ctx, Instruction(Opcode.HALT))
        assert res.halted
        assert ctx.halted

    def test_move_and_nop(self, executor, ctx):
        ctx.regs[1] = 9
        run(executor, ctx, Instruction(Opcode.MOVE, rd=2, ra=1))
        assert ctx.regs[2] == 9
        res = run(executor, ctx, Instruction(Opcode.NOP))
        assert res.ea is None and res.taken is None and not res.halted
