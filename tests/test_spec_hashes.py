"""Pinned SimJob spec hashes: the zoo must not move pre-existing keys.

``SimJob.spec()`` is the canonical description hashed into the result
cache key (``repro.harness.cache.stable_hash``) and the fleet journal
``job_key``.  Adding the hardware-prefetcher zoo grew the config with an
``hw_prefetcher`` field; the spec deliberately *omits* it when unset
(same discipline as ``checkpoint_every``) so every cache entry, journal
record, and checkpoint prefix minted before the zoo landed still
resolves.  These constants freeze that contract: if a key here drifts,
warm caches and resumable journals silently go cold — treat a failure
as a bug, not a fixture to regenerate.
"""

from __future__ import annotations

import pytest

from repro.config import PrefetchPolicy
from repro.harness.engine import make_job
from repro.harness.journal import job_key

#: Golden-grid budgets (tools/update_golden.py) — small, stable, and
#: already pinned by the fixture suite.
BUDGET = dict(
    max_instructions=4_000,
    warmup_instructions=1_000,
    seed=1,
    sample_interval=1_000,
)

#: (workload, policy) -> job_key minted before the zoo existed.  Byte
#: equality proves zoo-era specs hash identically to pre-zoo ones.
PINNED_JOB_KEYS = {
    ("mcf", PrefetchPolicy.HW_ONLY):
        "0963ca6b18d7e8c8df4cdc0e383d99786675471057eea8f786f6a249148bbd41",
    ("mcf", PrefetchPolicy.SELF_REPAIRING):
        "7179e6e9e49d9afd2a420e3528c330312cb43d84cf692e4b391b77bcca39baf2",
    ("swim", PrefetchPolicy.BASIC):
        "eeb0b2515cc70ce133f78cd4ee19d6fea5a63809b731625028c27b6991fba6f1",
    ("scenario:stride-flip", PrefetchPolicy.HW_ONLY):
        "cb822a2b1b6defc2cee5e60d0d0b6f1779143637d79902de31764a920df727f5",
}


@pytest.mark.parametrize(
    "workload,policy",
    sorted(PINNED_JOB_KEYS, key=lambda c: (c[0], c[1].value)),
    ids=lambda v: v.value if isinstance(v, PrefetchPolicy) else v,
)
def test_job_key_pinned(workload, policy):
    spec = make_job(workload, policy=policy, **BUDGET).spec()
    assert job_key(spec) == PINNED_JOB_KEYS[(workload, policy)]


@pytest.mark.parametrize(
    "policy", list(PrefetchPolicy), ids=lambda p: p.value
)
def test_enum_policy_spec_has_no_hw_prefetcher_key(policy):
    """Default runs must serialize exactly as they did pre-zoo: the
    ``hw_prefetcher`` key is absent, not ``null``."""
    spec = make_job("mcf", policy=policy, **BUDGET).spec()
    assert "hw_prefetcher" not in spec["config"]


def test_zoo_policy_spec_carries_engine_name():
    """Zoo runs hash differently from plain hw_only — the engine name
    is part of the cache identity."""
    from repro.hwprefetch.zoo import zoo_names

    base = make_job("mcf", policy=PrefetchPolicy.HW_ONLY, **BUDGET).spec()
    keys = {job_key(base)}
    for name in zoo_names():
        spec = make_job("mcf", policy=name, **BUDGET).spec()
        assert spec["config"]["policy"] == "hw_only"
        assert spec["config"]["hw_prefetcher"] == name
        keys.add(job_key(spec))
    # hw_only + every zoo engine all produce distinct cache identities.
    assert len(keys) == 1 + len(zoo_names())
