"""Unit tests for the hardware-prefetcher zoo: registry and engines.

The registry half pins the policy namespace (stable names, enum
disjointness, resolver semantics) that the CLI, ``make_job``, the cache
key, and the tournament all share.  The engine half drives each zoo
prefetcher through a recording stub hierarchy so the interesting control
decisions — GHB degree calibration, the STATISTICS/BEST_DEGREE sweep,
Triangel's confidence decay, the POWER7-style depth ladder — are
asserted directly rather than only through end-to-end timing.
"""

from __future__ import annotations

import pytest

from repro.config import MachineConfig, PrefetchPolicy
from repro.errors import ConfigError
from repro.hwprefetch.adaptive_nextline import (
    PAGE_SIZE,
    AdaptiveNextLinePrefetcher,
)
from repro.hwprefetch.ghb import GHBPrefetcher
from repro.hwprefetch.reconfig import PhaseReconfigPrefetcher
from repro.hwprefetch.triangel import TriangelPrefetcher
from repro.hwprefetch.zoo import (
    ZooEntry,
    all_policy_names,
    build_prefetcher,
    get_entry,
    policy_label,
    register,
    resolve_policy,
    zoo_names,
)
from repro.memory.hierarchy import MemoryHierarchy

EXPECTED_NAMES = (
    "ghb_delta", "adaptive_nextline", "triangel", "power7_reconfig",
)


class StubHierarchy:
    """Records every hardware_prefetch request; accepts them all."""

    def __init__(self, accept: bool = True) -> None:
        self.requests = []
        self.accept = accept

    def hardware_prefetch(self, addr: int, cycle: int) -> bool:
        self.requests.append(addr)
        return self.accept


class TestRegistry:
    def test_shipped_names_and_order(self):
        assert zoo_names() == EXPECTED_NAMES

    def test_all_policy_names_spans_both_namespaces(self):
        names = all_policy_names()
        assert names == tuple(p.value for p in PrefetchPolicy) + EXPECTED_NAMES
        assert len(names) == len(set(names))

    def test_get_entry_unknown(self):
        with pytest.raises(ConfigError, match="known"):
            get_entry("nonexistent")

    def test_register_rejects_duplicate(self):
        entry = get_entry("ghb_delta")
        with pytest.raises(ConfigError, match="already registered"):
            register(entry)

    def test_register_rejects_enum_collision(self):
        entry = ZooEntry(
            name=PrefetchPolicy.HW_ONLY.value, family="x",
            description="", recipe="", build=lambda m, h: None,
        )
        with pytest.raises(ConfigError, match="collides"):
            register(entry)
        assert PrefetchPolicy.HW_ONLY.value not in zoo_names()

    def test_register_rejects_missing_builder(self):
        entry = ZooEntry(
            name="no_builder", family="x", description="", recipe="",
        )
        with pytest.raises(ConfigError, match="builder"):
            register(entry)
        assert "no_builder" not in zoo_names()

    def test_register_rejects_non_string_name(self):
        entry = ZooEntry(
            name=None, family="x", description="", recipe="",
            build=lambda m, h: None,
        )
        with pytest.raises(ConfigError, match="string name"):
            register(entry)

    @pytest.mark.parametrize("name", EXPECTED_NAMES)
    def test_builders_produce_hook_compatible_engines(self, name):
        machine = MachineConfig()
        prefetcher = build_prefetcher(name, machine, MemoryHierarchy(machine))
        assert callable(prefetcher.on_demand_load)
        assert prefetcher.prefetches_issued == 0
        assert prefetcher.line_size == machine.line_size

    @pytest.mark.parametrize("name", EXPECTED_NAMES)
    def test_schema_matches_builder_defaults(self, name):
        """Every schema entry documents a real tunable: the built
        engine's actual defaults must agree."""
        entry = get_entry(name)
        built = entry.build(MachineConfig(), StubHierarchy())
        for key, expected in entry.schema.items():
            if key == "stride_entries":  # lives on the inner predictor
                actual = built.strides.entries
            else:
                actual = getattr(built, key)
            assert actual == expected, f"{name}.{key}"

    @pytest.mark.parametrize("name", EXPECTED_NAMES)
    def test_entries_document_recipes(self, name):
        entry = get_entry(name)
        assert name in entry.recipe
        assert entry.description


class TestResolvePolicy:
    @pytest.mark.parametrize("policy", list(PrefetchPolicy))
    def test_enum_passthrough(self, policy):
        assert resolve_policy(policy) == (policy, None)
        assert resolve_policy(policy.value) == (policy, None)

    @pytest.mark.parametrize("name", EXPECTED_NAMES)
    def test_zoo_name_rides_hw_only(self, name):
        assert resolve_policy(name) == (PrefetchPolicy.HW_ONLY, name)

    def test_unknown_lists_both_namespaces(self):
        with pytest.raises(ConfigError) as exc:
            resolve_policy("bogus")
        assert PrefetchPolicy.HW_ONLY.value in str(exc.value)
        assert "ghb_delta" in str(exc.value)

    def test_labels(self):
        assert policy_label(PrefetchPolicy.BASIC, None) == "basic"
        assert policy_label(PrefetchPolicy.HW_ONLY, "triangel") == "triangel"


class TestGHB:
    #: A periodic multi-delta pattern: a constant stride correlates but
    #: leaves no history to replay (the matched pair is always the one
    #: just written); a repeating delta *sequence* gives the GHB a past
    #: occurrence with real successors to prefetch.
    STRIDES = (128, 64, 256)

    def _drive(self, ghb, loads, perfect_memory=False):
        addr = 1 << 20
        for cycle in range(loads):
            block = ghb._block(addr)
            hit = perfect_memory and block in ghb._tagged
            ghb.on_demand_load(1, addr, l1_hit=hit, cycle=cycle)
            addr += self.STRIDES[cycle % len(self.STRIDES)]
        return addr

    def test_repeating_deltas_correlate_and_prefetch(self):
        hier = StubHierarchy()
        ghb = GHBPrefetcher(hier, calibration_interval=64)
        self._drive(ghb, loads=50)
        assert ghb.correlations_matched > 0
        assert ghb.prefetches_issued > 0
        # Constant stride 128: every replayed delta lands two lines up.
        assert all(addr % 64 == 0 for addr in hier.requests)

    def test_accurate_prefetching_raises_degree(self):
        hier = StubHierarchy()
        ghb = GHBPrefetcher(hier, calibration_interval=64)
        start_degree = ghb.degree
        # Perfect memory: every tagged block returns as a later L1 hit,
        # so issued accuracy is high and the calibrator probes upward.
        self._drive(ghb, loads=800, perfect_memory=True)
        assert ghb.calibrations >= 8
        assert ghb.degree > start_degree

    def test_useless_prefetching_lowers_degree(self):
        hier = StubHierarchy()
        ghb = GHBPrefetcher(hier, calibration_interval=64)
        start_degree = ghb.degree
        # Every load misses: tagged blocks never return as hits, so
        # issued accuracy is 0 and the calibrator backs off.
        self._drive(ghb, loads=800, perfect_memory=False)
        assert ghb.degree < start_degree

    def test_degree_zero_issues_nothing(self):
        hier = StubHierarchy()
        ghb = GHBPrefetcher(hier, degree=0, calibration_interval=1 << 30)
        self._drive(ghb, loads=50)
        assert ghb.prefetches_issued == 0
        assert hier.requests == []


class TestAdaptiveNextLine:
    def test_first_sweep_prefers_smaller_degree_on_tie(self):
        hier = StubHierarchy()
        p = AdaptiveNextLinePrefetcher(
            hier, stats_window=8, best_window=64, max_degree=2
        )
        # Identical (all-hit) windows for every probed degree: the tie
        # must resolve to the smaller degree.
        for cycle in range(2 * 8):  # sweep probes degrees 1 and 2
            p.on_demand_load(1, 0x1000, l1_hit=True, cycle=cycle)
        assert p.sweeps_completed == 1
        assert p.best_degree == 1
        assert p.degree == 1

    def test_best_degree_tracks_hit_rate(self):
        hier = StubHierarchy()
        p = AdaptiveNextLinePrefetcher(
            hier, stats_window=4, best_window=64, max_degree=2
        )
        # Degree 1's window misses everything, degree 2's window hits.
        for cycle in range(4):
            p.on_demand_load(1, 0x1000, l1_hit=False, cycle=cycle)
        for cycle in range(4):
            p.on_demand_load(1, 0x1000, l1_hit=True, cycle=cycle)
        assert p.sweeps_completed == 1
        assert p.best_degree == 2

    def test_remeasures_after_best_window(self):
        hier = StubHierarchy()
        p = AdaptiveNextLinePrefetcher(
            hier, stats_window=2, best_window=4, max_degree=1
        )
        for cycle in range(2):  # sweep: only degree 1 to probe
            p.on_demand_load(1, 0x1000, l1_hit=True, cycle=cycle)
        assert p.sweeps_completed == 1
        for cycle in range(4):  # exploitation window expires
            p.on_demand_load(1, 0x1000, l1_hit=True, cycle=cycle)
        # Re-measurement restarts from degree 0.
        assert p.degree == 0

    def test_never_crosses_page_boundary(self):
        hier = StubHierarchy()
        p = AdaptiveNextLinePrefetcher(hier, max_degree=4)
        p.degree = 4
        page = 5
        # Last block of the page: every next-line target crosses out.
        p.on_demand_load(1, page * PAGE_SIZE + PAGE_SIZE - 64, False, 0)
        assert hier.requests == []
        # First block of the page: the full run stays inside.
        p.degree = 4
        p.on_demand_load(1, page * PAGE_SIZE, False, 1)
        assert hier.requests
        assert all(t // PAGE_SIZE == page for t in hier.requests)


class TestTriangel:
    A, B, C, D = 0x1000, 0x2000, 0x3000, 0x4000

    def test_fresh_link_prefetches_and_chains(self):
        hier = StubHierarchy()
        t = TriangelPrefetcher(hier)
        t.on_demand_load(1, self.A, False, 0)
        t.on_demand_load(1, self.B, False, 1)  # trains A -> B
        t.on_demand_load(1, self.A, False, 2)  # trains B -> A, predicts
        # Hop 1 follows A -> B; hop 2 follows the fresh B -> A link.
        assert hier.requests == [self.B, self.A]
        assert t.entries_trained == 2

    def test_hits_neither_train_nor_predict(self):
        hier = StubHierarchy()
        t = TriangelPrefetcher(hier)
        for cycle, addr in enumerate((self.A, self.B, self.A)):
            t.on_demand_load(1, addr, l1_hit=True, cycle=cycle)
        assert t.entries_trained == 0
        assert hier.requests == []

    def test_disagreement_decays_then_filters(self):
        hier = StubHierarchy()
        t = TriangelPrefetcher(hier)
        for cycle, addr in enumerate((self.A, self.B)):  # A -> B (conf 1)
            t.on_demand_load(1, addr, False, cycle)
        t.on_demand_load(2, self.A, False, 2)  # fresh pc, no training pair
        t.on_demand_load(2, self.C, False, 3)  # A -> C disagrees: conf 0
        hier.requests.clear()
        t.on_demand_load(3, self.A, False, 4)  # entry present but conf 0
        assert hier.requests == []
        assert t.predictions_filtered >= 1

    def test_metadata_table_evicts_lru_source(self):
        hier = StubHierarchy()
        t = TriangelPrefetcher(hier, table_entries=2)
        # Three links from one pc: sources A, B, C; capacity 2.
        for cycle, addr in enumerate((self.A, self.B, self.C, self.D)):
            t.on_demand_load(1, addr, False, cycle)
        assert self.A not in t._table
        assert set(t._table) == {self.B, self.C}


class TestPhaseReconfig:
    def test_depth_ladder_follows_miss_rate(self):
        hier = StubHierarchy()
        p = PhaseReconfigPrefetcher(hier, epoch_loads=16)
        for cycle in range(16):  # all-miss epoch: miss rate 1.0
            p.on_demand_load(1, 0x1000 + cycle * 4096, False, cycle)
        assert p.depth == p.depths[-1]
        assert p.reconfigurations == 1
        for cycle in range(16):  # all-hit epoch: miss rate 0.0
            p.on_demand_load(1, 0x1000, True, cycle)
        assert p.depth == p.depths[0]
        assert p.reconfigurations == 2

    def test_sharp_phase_shift_resets_stride_history(self):
        hier = StubHierarchy()
        p = PhaseReconfigPrefetcher(hier, epoch_loads=8)
        for cycle in range(8):  # hot epoch
            p.on_demand_load(1, 0x1000 + cycle * 4096, False, cycle)
        trained = p.strides.updates
        assert trained > 0
        for cycle in range(8):  # quiet epoch: sharp relative shift
            p.on_demand_load(1, 0x1000, True, cycle)
        assert p.phase_switches == 1
        assert p.strides.updates == 0  # fresh predictor

    def test_confident_stride_prefetches_to_depth(self):
        hier = StubHierarchy()
        p = PhaseReconfigPrefetcher(hier, epoch_loads=1 << 30)
        stride, addr = 256, 1 << 20
        for cycle in range(8):
            p.on_demand_load(7, addr, False, cycle)
            addr += stride
        assert p.prefetches_issued > 0
        last = addr - stride  # final demand address
        depth = p.depth
        assert hier.requests[-depth:] == [
            last + stride * (i + 1) for i in range(depth)
        ]
