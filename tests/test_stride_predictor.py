"""Tests for the hardware stride predictor and stream buffers."""

import pytest

from repro.config import MachineConfig, StreamBufferConfig
from repro.hwprefetch.stride_predictor import StridePredictor
from repro.hwprefetch.stream_buffer import StreamBufferPrefetcher
from repro.memory.hierarchy import MemoryHierarchy


class TestStridePredictor:
    def test_learns_constant_stride(self):
        sp = StridePredictor(64)
        addr = 0x1000
        for _ in range(4):
            sp.update(5, addr)
            addr += 64
        assert sp.predict(5) == 64

    def test_no_prediction_below_confidence(self):
        sp = StridePredictor(64)
        sp.update(5, 0x1000)
        sp.update(5, 0x1040)
        assert sp.predict(5) is None

    def test_zero_stride_never_predicted(self):
        sp = StridePredictor(64)
        for _ in range(8):
            sp.update(5, 0x1000)
        assert sp.predict(5) is None

    def test_stride_change_relearns(self):
        sp = StridePredictor(64)
        addr = 0x1000
        for _ in range(6):
            sp.update(5, addr)
            addr += 64
        for _ in range(10):
            sp.update(5, addr)
            addr += 128
        assert sp.predict(5) == 128

    def test_conflicting_pcs_replace(self):
        sp = StridePredictor(4)
        sp.update(1, 0x1000)
        sp.update(5, 0x2000)  # same slot (5 % 4 == 1)
        assert sp.replacements == 1
        assert sp.confidence_of(1) == 0

    def test_requires_positive_entries(self):
        with pytest.raises(ValueError):
            StridePredictor(0)


class TestStreamBuffers:
    def make(self, num=4, entries=4):
        machine = MachineConfig()
        hier = MemoryHierarchy(machine)
        sb = StreamBufferPrefetcher(
            StreamBufferConfig(num_buffers=num, entries_per_buffer=entries),
            hier,
            line_size=64,
        )
        hier.stream_prefetcher = sb
        return hier, sb

    def train(self, hier, pc, start, stride, count, cycle=0, step=50):
        addr = start
        for i in range(count):
            hier.load(pc, addr, cycle + i * step)
            addr += stride
        return addr

    def test_allocation_after_confidence(self):
        hier, sb = self.make()
        self.train(hier, pc=7, start=0x100000, stride=64, count=6)
        assert sb.allocations >= 1
        assert sb.prefetches_issued >= 1

    def test_stream_hits_accumulate(self):
        hier, sb = self.make()
        self.train(hier, pc=7, start=0x100000, stride=64, count=30,
                   step=400)
        assert sb.stream_hits > 5

    def test_prefetched_lines_get_installed(self):
        hier, sb = self.make()
        self.train(hier, pc=7, start=0x100000, stride=64, count=10,
                   step=500)
        hier.drain(100_000)
        # The stream ran ahead: lines beyond the demand point are resident.
        assert hier.l1.contains(0x100000 + 11 * 64)

    def test_buffer_count_limits_streams(self):
        hier2, sb2 = self.make(num=2, entries=4)
        hier8, sb8 = self.make(num=8, entries=4)
        # Six interleaved streams: the 2-buffer config must thrash.
        for h, sb in ((hier2, sb2), (hier8, sb8)):
            cycle = 0
            for i in range(40):
                for s in range(6):
                    h.load(100 + s, 0x100000 + s * 0x100000 + i * 64, cycle)
                    cycle += 60
        assert sb8.stream_hits > sb2.stream_hits

    def test_small_stride_skips_within_line(self):
        hier, sb = self.make()
        # stride 8: consecutive entries must still be distinct blocks.
        self.train(hier, pc=7, start=0x100000, stride=8, count=80, step=30)
        for buffer in sb._buffers:
            if buffer is not None:
                assert len(buffer.blocks) == len(set(buffer.blocks))

    def test_no_allocation_for_random_pattern(self):
        import random

        rng = random.Random(1)
        hier, sb = self.make()
        for i in range(60):
            hier.load(9, rng.randrange(1 << 22) * 64, i * 50)
        assert sb.allocations == 0
