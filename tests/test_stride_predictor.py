"""Tests for the hardware stride predictor and stream buffers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import MachineConfig, StreamBufferConfig
from repro.hwprefetch.stride_predictor import StridePredictor
from repro.hwprefetch.stream_buffer import StreamBufferPrefetcher
from repro.memory.hierarchy import MemoryHierarchy

PAGE = 4096


class TestStridePredictor:
    def test_learns_constant_stride(self):
        sp = StridePredictor(64)
        addr = 0x1000
        for _ in range(4):
            sp.update(5, addr)
            addr += 64
        assert sp.predict(5) == 64

    def test_no_prediction_below_confidence(self):
        sp = StridePredictor(64)
        sp.update(5, 0x1000)
        sp.update(5, 0x1040)
        assert sp.predict(5) is None

    def test_zero_stride_never_predicted(self):
        sp = StridePredictor(64)
        for _ in range(8):
            sp.update(5, 0x1000)
        assert sp.predict(5) is None

    def test_stride_change_relearns(self):
        sp = StridePredictor(64)
        addr = 0x1000
        for _ in range(6):
            sp.update(5, addr)
            addr += 64
        for _ in range(10):
            sp.update(5, addr)
            addr += 128
        assert sp.predict(5) == 128

    def test_conflicting_pcs_replace(self):
        sp = StridePredictor(4)
        sp.update(1, 0x1000)
        sp.update(5, 0x2000)  # same slot (5 % 4 == 1)
        assert sp.replacements == 1
        assert sp.confidence_of(1) == 0

    def test_requires_positive_entries(self):
        with pytest.raises(ValueError):
            StridePredictor(0)


class TestNegativeStrideAliasing:
    """The table is direct-mapped on ``pc % entries``: colliding PCs
    replace each other.  Negative strides (descending array walks) are
    first-class and must survive — or be cleanly forgotten across — the
    aliasing corner."""

    ENTRIES = 64

    @given(
        stride=st.sampled_from((-8, -64, -96, -4096)),
        pc=st.integers(min_value=0, max_value=10_000),
    )
    @settings(deadline=None)
    def test_negative_stride_learned(self, stride, pc):
        sp = StridePredictor(self.ENTRIES)
        addr = 1 << 24
        for _ in range(5):
            sp.update(pc, addr)
            addr += stride
        assert sp.predict(pc) == stride

    @given(
        pc=st.integers(min_value=0, max_value=1_000),
        collisions=st.integers(min_value=1, max_value=4),
    )
    @settings(deadline=None)
    def test_alias_evicts_trained_negative_stride(self, pc, collisions):
        sp = StridePredictor(self.ENTRIES)
        addr = 1 << 24
        for _ in range(5):
            sp.update(pc, addr)
            addr -= 64
        assert sp.predict(pc) == -64
        alias = pc + collisions * self.ENTRIES  # same slot, different tag
        sp.update(alias, 0x5000)
        # The slot now belongs to the alias: no stale negative-stride
        # prediction may leak for either PC.
        assert sp.predict(pc) is None
        assert sp.confidence_of(pc) == 0
        assert sp.predict(alias) is None  # fresh entry, zero confidence
        assert sp.replacements == 1

    @given(
        pc=st.integers(min_value=0, max_value=1_000),
        stride_a=st.sampled_from((-64, -128, 64)),
        stride_b=st.sampled_from((-32, 32, 96)),
        rounds=st.integers(min_value=2, max_value=12),
    )
    @settings(deadline=None)
    def test_pingpong_aliasing_never_predicts(
        self, pc, stride_a, stride_b, rounds
    ):
        """Two PCs fighting over one slot: each update replaces the
        other's entry, so confidence never builds and neither PC may
        ever produce a (necessarily stale) prediction."""
        sp = StridePredictor(self.ENTRIES)
        alias = pc + self.ENTRIES
        addr_a, addr_b = 1 << 24, 1 << 25
        for _ in range(rounds):
            sp.update(pc, addr_a)
            sp.update(alias, addr_b)
            assert sp.predict(pc) is None
            assert sp.predict(alias) is None
            addr_a += stride_a
            addr_b += stride_b
        assert sp.replacements == 2 * rounds - 1


class TestStreamBuffers:
    def make(self, num=4, entries=4):
        machine = MachineConfig()
        hier = MemoryHierarchy(machine)
        sb = StreamBufferPrefetcher(
            StreamBufferConfig(num_buffers=num, entries_per_buffer=entries),
            hier,
            line_size=64,
        )
        hier.stream_prefetcher = sb
        return hier, sb

    def train(self, hier, pc, start, stride, count, cycle=0, step=50):
        addr = start
        for i in range(count):
            hier.load(pc, addr, cycle + i * step)
            addr += stride
        return addr

    def test_allocation_after_confidence(self):
        hier, sb = self.make()
        self.train(hier, pc=7, start=0x100000, stride=64, count=6)
        assert sb.allocations >= 1
        assert sb.prefetches_issued >= 1

    def test_stream_hits_accumulate(self):
        hier, sb = self.make()
        self.train(hier, pc=7, start=0x100000, stride=64, count=30,
                   step=400)
        assert sb.stream_hits > 5

    def test_prefetched_lines_get_installed(self):
        hier, sb = self.make()
        self.train(hier, pc=7, start=0x100000, stride=64, count=10,
                   step=500)
        hier.drain(100_000)
        # The stream ran ahead: lines beyond the demand point are resident.
        assert hier.l1.contains(0x100000 + 11 * 64)

    def test_buffer_count_limits_streams(self):
        hier2, sb2 = self.make(num=2, entries=4)
        hier8, sb8 = self.make(num=8, entries=4)
        # Six interleaved streams: the 2-buffer config must thrash.
        for h, sb in ((hier2, sb2), (hier8, sb8)):
            cycle = 0
            for i in range(40):
                for s in range(6):
                    h.load(100 + s, 0x100000 + s * 0x100000 + i * 64, cycle)
                    cycle += 60
        assert sb8.stream_hits > sb2.stream_hits

    def test_small_stride_skips_within_line(self):
        hier, sb = self.make()
        # stride 8: consecutive entries must still be distinct blocks.
        self.train(hier, pc=7, start=0x100000, stride=8, count=80, step=30)
        for buffer in sb._buffers:
            if buffer is not None:
                assert len(buffer.blocks) == len(set(buffer.blocks))

    def test_no_allocation_for_random_pattern(self):
        import random

        rng = random.Random(1)
        hier, sb = self.make()
        for i in range(60):
            hier.load(9, rng.randrange(1 << 22) * 64, i * 50)
        assert sb.allocations == 0

    def test_allocation_across_page_boundary(self):
        hier, sb = self.make()
        # Start two blocks shy of a page edge: the stream buffer's
        # run-ahead crosses into the next page immediately.  Stream
        # buffers are physical-stream devices — no page clamp.
        start = 0x200000 + PAGE - 2 * 64
        self.train(hier, pc=7, start=start, stride=64, count=8)
        assert sb.allocations >= 1
        blocks = [
            b for buf in sb._buffers if buf is not None for b in buf.blocks
        ]
        assert blocks, "stream must be running ahead"
        assert any(b >= 0x200000 + PAGE for b in blocks), (
            "run-ahead stopped at the page boundary"
        )
        assert len(blocks) == len(set(blocks))

    @given(stride=st.sampled_from((PAGE - 64, PAGE, PAGE + 64, 2 * PAGE)))
    @settings(deadline=None)
    def test_page_sized_strides_allocate_clean_streams(self, stride):
        """Strides at or beyond a page: every prefetch lands in a new
        page, each buffer entry is a distinct block, and the stream's
        stride survives the page crossings unchanged."""
        hier, sb = self.make()
        self.train(hier, pc=11, start=0x400000 + PAGE - 64, stride=stride,
                   count=10)
        assert sb.allocations >= 1
        streams = [b for b in sb._buffers if b is not None and not b.markov]
        assert streams
        for buf in streams:
            assert buf.stride == stride
            assert len(buf.blocks) == len(set(buf.blocks))
            for block in buf.blocks:
                assert block % 64 == 0
