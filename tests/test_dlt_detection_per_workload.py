"""The DLT's stride verdicts per workload: the table's hardware view must
match each workload's designed memory character."""

import pytest

from repro.config import PrefetchPolicy, SimulationConfig
from repro.harness.runner import Simulation


def dlt_verdicts(name, budget=50_000):
    sim = Simulation(
        name,
        SimulationConfig(
            policy=PrefetchPolicy.TRACE_ONLY, max_instructions=budget
        ),
    )
    sim.run()
    dlt = sim.runtime.dlt
    entries = dlt.entries()
    predictable = [e.tag for e in entries if e.confidence >= 15]
    return entries, predictable


class TestStrideVerdicts:
    def test_mcf_chase_rides_the_node_stride(self):
        """Sequential-segment layout: the hardware sees a stride where
        the code sees a pointer (the paper's section-3.3 observation).
        Confidence saturates inside a segment and dips at segment breaks,
        so the end-of-run snapshot asserts the *stride*, which is stable.
        """
        entries, _predictable = dlt_verdicts("mcf")
        assert entries
        assert all(e.stride == 64 for e in entries)

    def test_dot_chase_is_not_stride_predictable(self):
        entries, predictable = dlt_verdicts("dot")
        assert entries
        assert len(predictable) <= len(entries) * 0.2

    def test_swim_streams_are_stride_predictable(self):
        entries, predictable = dlt_verdicts("swim")
        assert entries
        assert len(predictable) == len(entries)

    def test_equake_gather_unpredictable_but_streams_predictable(self):
        entries, predictable = dlt_verdicts("equake", budget=80_000)
        assert entries
        unpredictable = [e.tag for e in entries if e.confidence < 15]
        # The gather (and only a minority of sites) lacks a stride.
        assert unpredictable
        assert predictable
