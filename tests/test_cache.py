"""Tests for the set-associative cache: geometry, LRU, prefetch metadata."""

import pytest

from repro.config import CacheConfig
from repro.memory.cache import SetAssociativeCache
from repro.memory.stats import PrefetchSource


def small_cache(sets=4, assoc=2, line=64):
    config = CacheConfig(
        size_bytes=sets * assoc * line, associativity=assoc, latency=3,
        line_size=line,
    )
    return SetAssociativeCache(config, "test")


class TestGeometry:
    def test_num_sets(self):
        config = CacheConfig(64 * 1024, 2, 3, 64)
        assert config.num_sets == 512

    def test_invalid_geometry_rejected(self):
        config = CacheConfig(32, 2, 3, 64)
        with pytest.raises(ValueError):
            config.num_sets

    def test_block_alignment(self):
        cache = small_cache()
        assert cache.block_of(0) == 0
        assert cache.block_of(63) == 0
        assert cache.block_of(64) == 64
        assert cache.block_of(130) == 128


class TestLookupInstall:
    def test_miss_then_hit(self):
        cache = small_cache()
        assert cache.lookup(0x100) is None
        cache.install(0x100)
        assert cache.lookup(0x100) is not None
        assert cache.misses == 1
        assert cache.hits == 1

    def test_same_line_words_share_block(self):
        cache = small_cache()
        cache.install(0x100)
        assert cache.lookup(0x108) is not None
        assert cache.lookup(0x13F) is not None

    def test_untouched_probe_has_no_side_effects(self):
        cache = small_cache()
        cache.install(0x100)
        cache.lookup(0x200, touch=False)
        assert cache.misses == 0
        assert cache.contains(0x100)
        assert not cache.contains(0x200)

    def test_lru_eviction_order(self):
        cache = small_cache(sets=1, assoc=2)
        cache.install(0 * 64)
        cache.install(1 * 64)
        cache.lookup(0)          # touch block 0: block 64 becomes LRU
        victim = cache.install(2 * 64)
        assert victim == 64
        assert cache.contains(0)
        assert not cache.contains(64)

    def test_install_existing_refreshes_lru(self):
        cache = small_cache(sets=1, assoc=2)
        cache.install(0)
        cache.install(64)
        cache.install(0)         # refresh block 0
        cache.install(128)
        assert cache.contains(0)
        assert not cache.contains(64)

    def test_eviction_counted(self):
        cache = small_cache(sets=1, assoc=1)
        cache.install(0)
        cache.install(64)
        assert cache.evictions == 1

    def test_invalidate(self):
        cache = small_cache()
        cache.install(0x100)
        assert cache.invalidate(0x108)
        assert not cache.contains(0x100)
        assert not cache.invalidate(0x100)

    def test_resident_blocks(self):
        cache = small_cache()
        cache.install(0)
        cache.install(64)
        cache.install(0)
        assert cache.resident_blocks == 2


class TestPrefetchMetadata:
    def test_prefetched_bit_set_on_install(self):
        cache = small_cache()
        cache.install(0x100, prefetched=True, source=PrefetchSource.SOFTWARE)
        line = cache.lookup(0x100)
        assert line.prefetched
        assert line.prefetch_source is PrefetchSource.SOFTWARE

    def test_install_over_existing_keeps_metadata(self):
        cache = small_cache()
        cache.install(0x100)
        cache.install(0x100, prefetched=True)
        assert not cache.lookup(0x100).prefetched

    def test_prefetch_displacement_logged_and_consumed(self):
        cache = small_cache(sets=1, assoc=1)
        cache.install(0)
        cache.install(64, prefetched=True)   # evicts block 0
        assert cache.consume_displaced_tag(0)
        # consumed: second miss on the same tag is a plain miss
        assert not cache.consume_displaced_tag(0)

    def test_demand_displacement_not_logged(self):
        cache = small_cache(sets=1, assoc=1)
        cache.install(0)
        cache.install(64)                    # demand install
        assert not cache.consume_displaced_tag(0)

    def test_displaced_log_bounded(self):
        cache = small_cache(sets=1, assoc=1)
        limit = SetAssociativeCache.DISPLACED_LOG_LIMIT
        for i in range(limit + 10):
            cache.install(i * 64, prefetched=True)
        assert len(cache._displaced_by_prefetch) <= limit
