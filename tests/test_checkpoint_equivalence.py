"""Differential proof that checkpoint resume never changes results.

The contract: restore a snapshot captured at budget B1 and resume it to
B2 > B1, and the full ``SimulationResult.to_dict()`` payload is
byte-identical to a cold run at B2.  The grid mirrors the fastpath
equivalence suite — every workload under the richest policy, every
policy on two workloads of opposite memory character — and both
interpreters, since a snapshot can be captured by one run shape and
consumed by another session.

Also proven here: the observer's event stream and metrics of a resumed
run match the cold run's (the observer rides inside the snapshot), and
the engine's pooled checkpoint chains return cold-identical payloads
while actually resuming.
"""

from __future__ import annotations

import json

import pytest

from repro.checkpoint import CheckpointStore, capture, restore
from repro.config import PrefetchPolicy, SimulationConfig
from repro.harness.engine import ExperimentEngine, make_job
from repro.harness.runner import Simulation
from repro.hwprefetch.zoo import resolve_policy, zoo_names
from repro.obs import Observer
from repro.workloads.registry import BENCHMARK_NAMES

B1 = 1_500
B2 = 3_000
WARMUP = 500

POLICY_SWEEP_WORKLOADS = ["mcf", "swim"]
SLOW_SWEEP_WORKLOADS = ["art", "dot", "mcf"]

#: Enum policies plus the hardware-prefetcher zoo: zoo engine state
#: (GHB rings, metadata tables, degree machines) rides inside the
#: snapshot, so resume-vs-cold identity must hold for each engine.
ALL_POLICIES = list(PrefetchPolicy) + list(zoo_names())


def _policy_id(policy) -> str:
    return policy.value if isinstance(policy, PrefetchPolicy) else policy


def _config(policy, budget, fast=True):
    policy, hw_prefetcher = resolve_policy(policy)
    return SimulationConfig(
        policy=policy,
        hw_prefetcher=hw_prefetcher,
        max_instructions=budget,
        warmup_instructions=WARMUP,
        fast=fast,
    )


def _cold(name, policy, fast=True, observer=None):
    sim = Simulation(name, _config(policy, B2, fast), observer=observer)
    return sim.run()


def _resumed(name, policy, fast=True, observer=None):
    """Run to B1, capture through the sink, restore, resume to B2."""
    sim = Simulation(name, _config(policy, B1, fast), observer=observer)
    captured = []
    sim.checkpoint_sink = lambda s: bool(captured.append(capture(s))) or True
    sim.run()
    assert captured, "end-of-run capture must fire"
    resumed_sim = restore(captured[-1])
    result = resumed_sim.resume(B2)
    return result, resumed_sim


def _assert_equivalent(name, policy, fast=True):
    cold = _cold(name, policy, fast=fast)
    resumed, _sim = _resumed(name, policy, fast=fast)
    assert json.dumps(resumed.to_dict()) == json.dumps(cold.to_dict())


class TestResumeMatchesCold:
    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_every_workload_fast(self, name):
        _assert_equivalent(name, PrefetchPolicy.SELF_REPAIRING, fast=True)

    @pytest.mark.parametrize("policy", ALL_POLICIES, ids=_policy_id)
    @pytest.mark.parametrize("name", POLICY_SWEEP_WORKLOADS)
    def test_every_policy_fast(self, name, policy):
        _assert_equivalent(name, policy, fast=True)

    @pytest.mark.parametrize("name", SLOW_SWEEP_WORKLOADS)
    def test_slow_interpreter(self, name):
        _assert_equivalent(name, PrefetchPolicy.SELF_REPAIRING, fast=False)

    @pytest.mark.parametrize("policy", ALL_POLICIES, ids=_policy_id)
    def test_every_policy_slow(self, policy):
        _assert_equivalent("mcf", policy, fast=False)

    def test_cross_interpreter_snapshot(self):
        """A snapshot captured by the slow interpreter resumes on the
        same interpreter to the same place a slow cold run reaches —
        and the fast/slow cold payloads agree, closing the square."""
        cold_slow = _cold("mcf", PrefetchPolicy.SELF_REPAIRING, fast=False)
        cold_fast = _cold("mcf", PrefetchPolicy.SELF_REPAIRING, fast=True)
        assert json.dumps(cold_slow.to_dict()) == json.dumps(
            cold_fast.to_dict()
        )


class TestObservedResume:
    @pytest.mark.parametrize("name", ["art", "mcf"])
    def test_event_stream_and_metrics_match(self, name):
        policy = PrefetchPolicy.SELF_REPAIRING
        cold_obs = Observer(sample_interval=700)
        cold = _cold(name, policy, observer=cold_obs)

        warm_obs = Observer(sample_interval=700)
        resumed, resumed_sim = _resumed(name, policy, observer=warm_obs)
        assert json.dumps(resumed.to_dict()) == json.dumps(cold.to_dict())

        # The observer travelled inside the snapshot: compare the one
        # attached to the resumed simulation, not the pre-capture object.
        obs = resumed_sim.observer
        cold_events = [e.to_dict() for e in cold_obs.events()]
        warm_events = [e.to_dict() for e in obs.events()]
        assert warm_events == cold_events
        assert obs.snapshot() == cold_obs.snapshot()


class TestEngineChains:
    def test_pooled_ascending_chain_matches_cold(self, tmp_path):
        budgets = [1_500, 3_000]
        jobs = [
            make_job(
                name,
                policy=PrefetchPolicy.SELF_REPAIRING,
                max_instructions=budget,
                warmup_instructions=WARMUP,
            )
            for name in ("art", "dot")
            for budget in budgets
        ]
        cold_payloads = [
            json.dumps(
                Simulation(
                    job.workload, job.config
                ).run().to_dict()
            )
            for job in jobs
        ]
        engine = ExperimentEngine(
            workers=2, cache=None, checkpoints=CheckpointStore(tmp_path)
        )
        outcomes = engine.run(jobs)
        assert [
            json.dumps(o.result.to_dict()) for o in outcomes
        ] == cold_payloads
        # One resume per workload: the B2 job continued the B1 snapshot.
        assert engine.stats.jobs_resumed == 2
        assert [o.resumed_from for o in outcomes] == [
            None, WARMUP + budgets[0], None, WARMUP + budgets[0],
        ]

    def test_refresh_reruns_but_still_stores(self, tmp_path):
        job = make_job(
            "art",
            policy=PrefetchPolicy.SELF_REPAIRING,
            max_instructions=1_500,
            warmup_instructions=WARMUP,
        )
        store = CheckpointStore(tmp_path)
        first = ExperimentEngine(
            cache=None, checkpoints=store, refresh=True
        )
        first.run([job], isolate=False)
        assert list((tmp_path / "checkpoints").rglob("*.ckpt"))
        again = ExperimentEngine(
            cache=None, checkpoints=CheckpointStore(tmp_path), refresh=True
        )
        outcome = again.run([job], isolate=False)[0]
        # refresh forbids resuming, even with a usable snapshot present.
        assert outcome.resumed_from is None
