"""Functional smoke of each workload's program semantics (no timing).

Executes a few thousand instructions of every workload through the bare
functional executor (no caches, no Trident) and checks architectural
sanity: the program stays within bounds, registers hold finite values,
loads touch mapped-or-heap addresses, and control flow loops.
"""

import pytest

from repro.cpu.context import ThreadContext
from repro.cpu.executor import Executor
from repro.isa.opcodes import Opcode
from repro.memory.mainmem import HEAP_BASE
from repro.workloads.registry import BENCHMARK_NAMES, load_workload


def functional_run(workload, steps=4_000):
    ctx = ThreadContext(entry=workload.program.entry)
    executor = Executor(workload.memory)
    program = workload.program
    pcs = []
    load_addresses = []
    for _ in range(steps):
        inst = program.fetch(ctx.pc)
        res = executor.execute(inst, ctx)
        pcs.append(ctx.pc)
        if res.ea is not None and inst.is_load:
            load_addresses.append(res.ea)
        if ctx.halted:
            break
        if res.jump_target is not None:
            ctx.pc = res.jump_target
        elif res.taken is True:
            ctx.pc = inst.target
        else:
            ctx.pc += 1
    return ctx, pcs, load_addresses


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
class TestFunctionalSanity:
    def test_runs_without_leaving_program(self, name):
        workload = load_workload(name)
        ctx, pcs, _loads = functional_run(workload)
        assert not ctx.halted  # budgets never reach the huge outer counts
        assert 0 <= max(pcs) < len(workload.program)

    def test_loops(self, name):
        workload = load_workload(name)
        _ctx, pcs, _loads = functional_run(workload)
        # Some PC repeats many times: a hot loop exists and executes.
        from collections import Counter

        most_common = Counter(pcs).most_common(1)[0][1]
        assert most_common > 5

    def test_loads_stay_on_heap(self, name):
        workload = load_workload(name)
        _ctx, _pcs, loads = functional_run(workload)
        assert loads
        assert all(addr >= HEAP_BASE for addr in loads)

    def test_register_values_bounded(self, name):
        workload = load_workload(name)
        ctx, _pcs, _loads = functional_run(workload, steps=6_000)
        for value in ctx.regs:
            if isinstance(value, int):
                assert -(2**63) <= value < 2**64
            else:
                import math

                assert not math.isnan(value)
