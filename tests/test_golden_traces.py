"""Golden-trace regression suite: recompute every pinned fixture cell.

``tools/update_golden.py`` freezes the full ``SimulationResult.to_dict()``
payload of a small-budget (workload, policy) grid, plus a sha256 of its
canonical JSON.  This suite recomputes each cell on every run — under the
default decoded fast path *and* the reference interpreter — and diffs the
payloads field by field, so any silent timing drift anywhere in the stack
(interpreter, hierarchy, hardware prefetchers, Trident runtime) fails
with a readable diff instead of quietly shifting the figures.

On an *intentional* timing change, regenerate with::

    PYTHONPATH=src python tools/update_golden.py

and commit the rewritten fixtures with the change that justifies them.
"""

from __future__ import annotations

import hashlib
import importlib.util
import json
import pathlib
import sys

import pytest

ROOT = pathlib.Path(__file__).parent.parent

# tools/ is not a package; load the generator module directly so the test
# and the regeneration script can never disagree on budgets or hashing.
_spec = importlib.util.spec_from_file_location(
    "update_golden", ROOT / "tools" / "update_golden.py"
)
ug = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("update_golden", ug)
_spec.loader.exec_module(ug)

from repro.harness.runner import run_simulation  # noqa: E402

CELLS = [
    (workload, policy)
    for workload in ug.ALL_WORKLOADS
    for policy in ug.POLICIES
]


def _flatten(payload, prefix=""):
    """Flatten a nested payload into dotted-path -> leaf-value pairs."""
    if isinstance(payload, dict):
        for key, value in payload.items():
            yield from _flatten(value, f"{prefix}.{key}" if prefix else key)
    elif isinstance(payload, list):
        for i, value in enumerate(payload):
            yield from _flatten(value, f"{prefix}[{i}]")
    else:
        yield prefix, payload


def _diff(expected: dict, actual: dict) -> str:
    """Readable per-field diff between two result payloads."""
    exp = dict(_flatten(expected))
    act = dict(_flatten(actual))
    lines = []
    for path in sorted(exp.keys() | act.keys()):
        e, a = exp.get(path, "<absent>"), act.get(path, "<absent>")
        if e != a:
            lines.append(f"  {path}: golden={e!r} recomputed={a!r}")
    return "\n".join(lines[:40]) or "  (payloads differ only in structure)"


def _load_fixture(workload, policy) -> dict:
    path = ug.fixture_path(workload, policy)
    assert path.exists(), (
        f"missing golden fixture {path.name}; run "
        "`PYTHONPATH=src python tools/update_golden.py`"
    )
    return json.loads(path.read_text())


def _recompute(spec: dict, fast: bool) -> dict:
    result = run_simulation(
        ug.workload_arg(spec["workload"], spec["seed"]),
        policy=spec["policy"],
        max_instructions=spec["max_instructions"],
        warmup_instructions=spec["warmup_instructions"],
        seed=spec["seed"],
        sample_interval=spec["sample_interval"],
        fast=fast,
    )
    return result.to_dict()


@pytest.mark.parametrize(
    "workload,policy", CELLS, ids=[f"{w}-{p.value}" for w, p in CELLS]
)
@pytest.mark.parametrize("fast", [True, False], ids=["fast", "slow"])
def test_golden_cell(workload, policy, fast):
    fixture = _load_fixture(workload, policy)
    payload = _recompute(fixture["spec"], fast=fast)
    canon = ug.canonical(payload)

    if payload != fixture["result"]:
        pytest.fail(
            f"timing drift vs golden {workload}/{policy.value} "
            f"(fast={fast}):\n" + _diff(fixture["result"], payload)
        )
    # Byte-exact guard on top of the structural compare: key order and
    # float formatting are part of the contract too.
    assert canon == ug.canonical(fixture["result"])
    assert hashlib.sha256(canon.encode()).hexdigest() == fixture["sha256"]


def test_fixture_grid_complete():
    """Every registered workload×policy cell has a committed fixture."""
    missing = [
        ug.fixture_path(w, p).name
        for w, p in CELLS
        if not ug.fixture_path(w, p).exists()
    ]
    assert not missing, f"missing fixtures: {missing}"
