"""Golden-trace regression suite: recompute every pinned fixture cell.

``tools/update_golden.py`` freezes the full ``SimulationResult.to_dict()``
payload of a small-budget (workload, policy) grid, plus a sha256 of its
canonical JSON.  This suite recomputes each cell on every run — under the
default decoded fast path *and* the reference interpreter — and diffs the
payloads field by field, so any silent timing drift anywhere in the stack
(interpreter, hierarchy, hardware prefetchers, Trident runtime) fails
with a readable diff instead of quietly shifting the figures.

On an *intentional* timing change, regenerate with::

    PYTHONPATH=src python tools/update_golden.py

and commit the rewritten fixtures with the change that justifies them.
"""

from __future__ import annotations

import hashlib
import importlib.util
import json
import pathlib
import sys

import pytest

ROOT = pathlib.Path(__file__).parent.parent

# tools/ is not a package; load the generator module directly so the test
# and the regeneration script can never disagree on budgets or hashing.
_spec = importlib.util.spec_from_file_location(
    "update_golden", ROOT / "tools" / "update_golden.py"
)
ug = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("update_golden", ug)
_spec.loader.exec_module(ug)

from repro.harness.runner import run_simulation  # noqa: E402

CELLS = list(ug.grid_cells())


def _flatten(payload, prefix=""):
    """Flatten a nested payload into dotted-path -> leaf-value pairs."""
    if isinstance(payload, dict):
        for key, value in payload.items():
            yield from _flatten(value, f"{prefix}.{key}" if prefix else key)
    elif isinstance(payload, list):
        for i, value in enumerate(payload):
            yield from _flatten(value, f"{prefix}[{i}]")
    else:
        yield prefix, payload


def _diff(expected: dict, actual: dict) -> str:
    """Readable per-field diff between two result payloads."""
    exp = dict(_flatten(expected))
    act = dict(_flatten(actual))
    lines = []
    for path in sorted(exp.keys() | act.keys()):
        e, a = exp.get(path, "<absent>"), act.get(path, "<absent>")
        if e != a:
            lines.append(f"  {path}: golden={e!r} recomputed={a!r}")
    return "\n".join(lines[:40]) or "  (payloads differ only in structure)"


def _load_fixture(workload, policy) -> dict:
    path = ug.fixture_path(workload, policy)
    assert path.exists(), (
        f"missing golden fixture {path.name}; run "
        "`PYTHONPATH=src python tools/update_golden.py`"
    )
    return json.loads(path.read_text())


def _recompute(spec: dict, fast: bool) -> dict:
    result = run_simulation(
        ug.workload_arg(spec["workload"], spec["seed"]),
        policy=spec["policy"],
        max_instructions=spec["max_instructions"],
        warmup_instructions=spec["warmup_instructions"],
        seed=spec["seed"],
        sample_interval=spec["sample_interval"],
        fast=fast,
    )
    return result.to_dict()


@pytest.mark.parametrize(
    "workload,policy",
    CELLS,
    ids=[f"{w}-{ug.policy_value(p)}" for w, p in CELLS],
)
@pytest.mark.parametrize("fast", [True, False], ids=["fast", "slow"])
def test_golden_cell(workload, policy, fast):
    fixture = _load_fixture(workload, policy)
    payload = _recompute(fixture["spec"], fast=fast)
    canon = ug.canonical(payload)

    if payload != fixture["result"]:
        pytest.fail(
            f"timing drift vs golden {workload}/{ug.policy_value(policy)} "
            f"(fast={fast}):\n" + _diff(fixture["result"], payload)
        )
    # Byte-exact guard on top of the structural compare: key order and
    # float formatting are part of the contract too.
    assert canon == ug.canonical(fixture["result"])
    assert hashlib.sha256(canon.encode()).hexdigest() == fixture["sha256"]


def test_fixture_grid_complete():
    """Every registered workload×policy cell has a committed fixture."""
    missing = [
        ug.fixture_path(w, p).name
        for w, p in CELLS
        if not ug.fixture_path(w, p).exists()
    ]
    assert not missing, f"missing fixtures: {missing}"


#: sha256 of every golden fixture *file* that predates the hardware-
#: prefetcher zoo (28 builtin + 4 scenario workloads × 2 policies).
#: Adding the zoo (new config field, new fixture cells) must not move a
#: byte of them — the spec omits ``hw_prefetcher`` when unset precisely
#: so these stay frozen.  A mismatch here means a timing or
#: serialization change leaked into pre-zoo cells; regenerate ONLY on an
#: intentional timing change, and update this manifest with it.
PRE_ZOO_FIXTURE_SHA256 = {
    "applu__hw_only.json":
        "ba8e755489cd7a4c9d1b39da0ef7a520c23d997bbd8558b8d49087b0ac270daa",
    "applu__self_repairing.json":
        "766c30964107d5d48afa7e4f8d19e47ad7ada34dac6201c236ed46f789c4fa3f",
    "art__hw_only.json":
        "0e3ea0badd528b0d0ba161606300aecea083f723cf103518c71f6044e9f3ac5a",
    "art__self_repairing.json":
        "3d73e8dad112fbd640d798787c0544e0775a1c4ac6a64abee120f603b6261a2a",
    "dot__hw_only.json":
        "028aea4c901f0afb8ffe9b249a9383755677e6c2d1c7396245a9f28411fc0a13",
    "dot__self_repairing.json":
        "3e3c248942665c01efa080eaa4866ca96bf95e22531cb340e6c0b5f952966586",
    "equake__hw_only.json":
        "402f3f09b35989e4db6b3c240b45fd2c580f753d9b4a220fe0e759f6e0df0b4f",
    "equake__self_repairing.json":
        "ff4f1e97b1accf5f95844d6511a7a843aff20137beb0dcda333f70334923281c",
    "facerec__hw_only.json":
        "e88e001797157ff24fbbd9e81a0eb8e76bd3181cc18fcb2a2733bf7752a7486c",
    "facerec__self_repairing.json":
        "477c7ba7f7d5881b81a23e8ed6df708f704c4ef202d8be0394e71401fbb514f9",
    "fma3d__hw_only.json":
        "9b885933678f040760e9cd49c3d6f6ffbef41ac587730ba9298582fff6808d86",
    "fma3d__self_repairing.json":
        "388ae5c644bf309f51486d5d062251e7cbf6a4c9c637a839c49122b9c0425840",
    "galgel__hw_only.json":
        "81acd94c6c12c627045ffbd8de44c7ed2c1b026dda24a17e357aca1c493e0c0c",
    "galgel__self_repairing.json":
        "fc42e89c6cf08b4deef6f2baad6ac6d7f07751db4f58b82765feb68a09a7a1af",
    "gap__hw_only.json":
        "05fe94e57dd74850323b097eee4f9c75cad860bf91f7c0781d4360a66d7dd60c",
    "gap__self_repairing.json":
        "ce20bf52a3c04e0eca2b39e64b81fd0c7b012991bbc65cdebff3132ddec20e0b",
    "hash-churn__hw_only.json":
        "4bc459151729fa1b5cb3de377da97d26aa9cc1173d42801745b36dcbf2934b34",
    "hash-churn__self_repairing.json":
        "62d6a23f950b9bf0ac0c83ebf26db91454298fc0250c86e0f4b71f99252a7358",
    "mcf__hw_only.json":
        "dca357cdd339ee9c7a6a4fb12c051272905262595255706757d91ab7ac71168a",
    "mcf__self_repairing.json":
        "48d32faebbb0492af43d5d967af6540565a3459bca2698dfd98641971070796d",
    "mgrid__hw_only.json":
        "508f7ef890e69e7ea10da52bf7e159668cfb0a7d0526ac0d8756452622a49f48",
    "mgrid__self_repairing.json":
        "3ba62bb6b04dfb8c9f0ed2e23a6135d03a8538184ec6e8758ef12384809acead",
    "object-walk__hw_only.json":
        "46f43c7a9f64eb229639a6e9a329b36185356cff449dcfe2e4574943e7e7a2a2",
    "object-walk__self_repairing.json":
        "9c881277797bef9eb791bfb5b94c548ab3af3c86581bd7ed0a66f405ce4e76d2",
    "parser__hw_only.json":
        "70a4c949e2542931f5526c648fbdd2605751afcd740e03f183214452eef6b04c",
    "parser__self_repairing.json":
        "91e27702eab83625458c35d3269a74ac9b59bd1cc4305212feae5e4e0f11a27e",
    "ramp-chase__hw_only.json":
        "86f4f77eadfda45a4c483b86a42859e5dcb25215ee3f31ddf50eadb1fc789efb",
    "ramp-chase__self_repairing.json":
        "1d95cf72e0e43df2995d08a56889d7a92f04abf6bdc517eb19dfa858f61128c6",
    "stride-flip__hw_only.json":
        "3d29878811d7ccc847e22a6fe032101b7a9649c3103ee520a500e9282fcaeaef",
    "stride-flip__self_repairing.json":
        "45b52bb54567a5151b8b5070a2c0877d04f433ae29d860107ea9e65064a14741",
    "swim__hw_only.json":
        "d70cabf66539b9eacdeb9c018827c53c2e87ed4d938a21264615407c7e6c5a96",
    "swim__self_repairing.json":
        "7bfbd4a41488d0270e18f8c2f0b16d3884d187f26004bb848c4e6c3d86cb22a7",
    "vis__hw_only.json":
        "fdf199c4aa3152f2b6c07af0aeb6d70ffa5ecab21451cdb7f687fffbd9416737",
    "vis__self_repairing.json":
        "f874ecb0b8533b63e662739ac0cbbf688bc97d07d467c9fe9c29ae795d681a57",
    "wupwise__hw_only.json":
        "2a2ff800d4b40a0f80e65a8d2d4e040856f572f1e20a47fd96c86042ef26a14f",
    "wupwise__self_repairing.json":
        "ea793ccfeef4af3bc0ebd90ab7456429a31c29976ba7693f5fca1c7306a2f6c6",
}


def test_pre_zoo_fixtures_byte_unchanged():
    """The 36 pre-zoo fixture files are byte-for-byte frozen."""
    assert len(PRE_ZOO_FIXTURE_SHA256) == 36
    drifted = []
    for name, expected in sorted(PRE_ZOO_FIXTURE_SHA256.items()):
        path = ug.GOLDEN_DIR / name
        assert path.exists(), f"pre-zoo fixture {name} deleted"
        actual = hashlib.sha256(path.read_bytes()).hexdigest()
        if actual != expected:
            drifted.append(f"  {name}: pinned={expected[:12]} got={actual[:12]}")
    assert not drifted, (
        "pre-zoo golden fixtures changed on disk (the zoo must not "
        "perturb them):\n" + "\n".join(drifted)
    )


def test_zoo_grid_has_all_policies():
    """Every registered zoo policy has a fixture on the zoo subset."""
    from repro.hwprefetch.zoo import zoo_names

    zoo_cells = {(w, p) for w, p in CELLS if isinstance(p, str)}
    expected = {
        (w, name) for w in ug.ZOO_WORKLOADS for name in zoo_names()
    }
    assert zoo_cells == expected
