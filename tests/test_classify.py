"""Tests for delinquent-load classification and same-object grouping."""

from repro.config import DLTConfig
from repro.core.classify import (
    LoadClass,
    classify_loads,
    collect_loads,
)
from repro.core.groups import build_groups
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.trident.dlt import DelinquentLoadTable
from repro.trident.trace import TraceInstruction


def ti(opcode, **kwargs):
    return TraceInstruction(inst=Instruction(opcode, **kwargs), orig_pc=0)


def body_with_pcs(instrs):
    """Assign sequential orig PCs."""
    for pc, t in enumerate(instrs):
        t.orig_pc = pc
    return instrs


def stride_loop_body():
    """ldq r2, 8(r1); ldq r3, 16(r1); lda r1, 64(r1); bne."""
    return body_with_pcs([
        ti(Opcode.LDQ, rd=2, ra=1, disp=8),
        ti(Opcode.LDQ, rd=3, ra=1, disp=16),
        ti(Opcode.LDA, rd=1, ra=1, disp=64),
        ti(Opcode.BNE, ra=4, target=0),
    ])


def chase_loop_body():
    """ldq r2, 8(r1); ldq r1, 0(r1); bne (scrambled chase)."""
    return body_with_pcs([
        ti(Opcode.LDQ, rd=2, ra=1, disp=8),
        ti(Opcode.LDQ, rd=1, ra=1, disp=0),
        ti(Opcode.BNE, ra=4, target=0),
    ])


class TestCollectLoads:
    def test_loads_and_versions(self):
        loads = collect_loads(stride_loop_body())
        assert len(loads) == 2
        assert [l.disp for l in loads] == [8, 16]
        # Same base version: r1 not redefined between them.
        assert loads[0].base_version == loads[1].base_version

    def test_version_bump_after_redefinition(self):
        body = body_with_pcs([
            ti(Opcode.LDQ, rd=2, ra=1, disp=8),
            ti(Opcode.LDA, rd=1, ra=1, disp=64),
            ti(Opcode.LDQ, rd=3, ra=1, disp=8),
        ])
        loads = collect_loads(body)
        assert loads[0].base_version != loads[1].base_version

    def test_synthetic_loads_ignored(self):
        body = stride_loop_body()
        body.insert(
            0,
            TraceInstruction(
                inst=Instruction(Opcode.LDQ_NF, rd=28, ra=1, disp=0),
                orig_pc=0,
                synthetic=True,
            ),
        )
        loads = collect_loads(body)
        assert len(loads) == 2


class TestStrideClassification:
    def test_lda_recurrence_detected(self):
        body = stride_loop_body()
        loads = collect_loads(body)
        classify_loads(body, loads, {0, 1}, dlt=None)
        assert all(l.load_class is LoadClass.STRIDE for l in loads)
        assert all(l.stride == 64 for l in loads)

    def test_addq_recurrence_detected(self):
        body = body_with_pcs([
            ti(Opcode.LDQ, rd=2, ra=1, disp=0),
            ti(Opcode.ADDQ, rd=1, ra=1, imm=32),
            ti(Opcode.BNE, ra=4, target=0),
        ])
        loads = collect_loads(body)
        classify_loads(body, loads, {0}, dlt=None)
        assert loads[0].stride == 32

    def test_subq_recurrence_gives_negative_stride(self):
        body = body_with_pcs([
            ti(Opcode.LDQ, rd=2, ra=1, disp=0),
            ti(Opcode.SUBQ, rd=1, ra=1, imm=8),
            ti(Opcode.BNE, ra=4, target=0),
        ])
        loads = collect_loads(body)
        classify_loads(body, loads, {0}, dlt=None)
        assert loads[0].stride == -8

    def test_two_updates_break_recurrence(self):
        body = body_with_pcs([
            ti(Opcode.LDQ, rd=2, ra=1, disp=0),
            ti(Opcode.LDA, rd=1, ra=1, disp=8),
            ti(Opcode.LDA, rd=1, ra=1, disp=8),
            ti(Opcode.BNE, ra=4, target=0),
        ])
        loads = collect_loads(body)
        classify_loads(body, loads, {0}, dlt=None)
        assert loads[0].load_class is not LoadClass.STRIDE

    def test_non_constant_update_breaks_recurrence(self):
        body = body_with_pcs([
            ti(Opcode.LDQ, rd=2, ra=1, disp=0),
            ti(Opcode.ADDQ, rd=1, ra=1, rb=5),
            ti(Opcode.BNE, ra=4, target=0),
        ])
        loads = collect_loads(body)
        classify_loads(body, loads, {0}, dlt=None)
        assert loads[0].load_class is not LoadClass.STRIDE

    def test_dlt_stride_rescues_pointer_load(self):
        """A chase load with a hardware-observed stride becomes STRIDE —
        the paper's key observation (section 3.3)."""
        body = chase_loop_body()
        dlt = DelinquentLoadTable(DLTConfig(), 17.5)
        addr = 0x10000
        for _ in range(20):
            dlt.update(1, addr, False, 0)  # pc 1 = the chase load
            addr += 64
        loads = collect_loads(body)
        classify_loads(body, loads, {1}, dlt=dlt)
        chase = [l for l in loads if l.orig_pc == 1][0]
        assert chase.load_class is LoadClass.STRIDE
        assert chase.stride == 64


class TestPointerClassification:
    def test_self_chase_is_pointer(self):
        body = chase_loop_body()
        loads = collect_loads(body)
        classify_loads(body, loads, {1}, dlt=None)
        chase = [l for l in loads if l.orig_pc == 1][0]
        assert chase.load_class is LoadClass.POINTER

    def test_dest_used_as_base_is_pointer(self):
        body = body_with_pcs([
            ti(Opcode.LDQ, rd=2, ra=1, disp=0),   # p = x->field
            ti(Opcode.LDQ, rd=3, ra=2, disp=8),   # p->y
            ti(Opcode.LDQ, rd=1, ra=6, disp=0),
            ti(Opcode.BNE, ra=4, target=0),
        ])
        loads = collect_loads(body)
        classify_loads(body, loads, {0}, dlt=None)
        assert loads[0].load_class is LoadClass.POINTER

    def test_wraparound_use_detected(self):
        """The pointer's consumer can precede it in the loop body."""
        body = body_with_pcs([
            ti(Opcode.LDQ, rd=3, ra=2, disp=8),   # uses r2 (loop-carried)
            ti(Opcode.LDQ, rd=2, ra=6, disp=0),   # defines r2
            ti(Opcode.BNE, ra=4, target=0),
        ])
        loads = collect_loads(body)
        classify_loads(body, loads, {1}, dlt=None)
        assert loads[1].load_class is LoadClass.POINTER

    def test_dest_redefined_before_use_not_pointer(self):
        body = body_with_pcs([
            ti(Opcode.LDQ, rd=2, ra=1, disp=0),
            ti(Opcode.LDA, rd=2, ra=31, disp=0),  # clobber r2
            ti(Opcode.LDQ, rd=3, ra=2, disp=8),
            ti(Opcode.BNE, ra=4, target=0),
        ])
        loads = collect_loads(body)
        classify_loads(body, loads, {0}, dlt=None)
        assert loads[0].load_class is LoadClass.UNCLASSIFIED

    def test_gather_is_unclassified(self):
        body = body_with_pcs([
            ti(Opcode.LDQ, rd=4, ra=1, disp=0),   # index (stride)
            ti(Opcode.SLL, rd=5, ra=4, imm=3),
            ti(Opcode.ADDQ, rd=5, ra=5, rb=3),
            ti(Opcode.LDQ, rd=6, ra=5, disp=0),   # gather: x[index]
            ti(Opcode.LDA, rd=1, ra=1, disp=8),
            ti(Opcode.BNE, ra=7, target=0),
        ])
        loads = collect_loads(body)
        classify_loads(body, loads, {3}, dlt=None)
        gather = [l for l in loads if l.orig_pc == 3][0]
        assert gather.load_class is LoadClass.UNCLASSIFIED


class TestGrouping:
    def test_same_base_same_version_grouped(self):
        body = stride_loop_body()
        loads = collect_loads(body)
        classify_loads(body, loads, {0, 1}, dlt=None)
        groups = build_groups(loads)
        assert len(groups) == 1
        assert groups[0].load_pcs == (0, 1)
        assert groups[0].stride == 64
        assert groups[0].stride_predictable

    def test_groups_need_a_delinquent_member(self):
        body = stride_loop_body()
        loads = collect_loads(body)
        classify_loads(body, loads, set(), dlt=None)
        assert build_groups(loads) == []

    def test_grouping_disabled_gives_singletons(self):
        body = stride_loop_body()
        loads = collect_loads(body)
        classify_loads(body, loads, {0, 1}, dlt=None)
        groups = build_groups(loads, grouping=False)
        assert len(groups) == 2
        assert all(len(g.members) == 1 for g in groups)

    def test_different_versions_not_grouped(self):
        body = body_with_pcs([
            ti(Opcode.LDQ, rd=2, ra=1, disp=8),
            ti(Opcode.LDA, rd=1, ra=1, disp=64),
            ti(Opcode.LDQ, rd=3, ra=1, disp=8),
            ti(Opcode.BNE, ra=4, target=0),
        ])
        loads = collect_loads(body)
        classify_loads(body, loads, {0, 2}, dlt=None)
        groups = build_groups(loads)
        assert len(groups) == 2

    def test_delinquent_only_offsets(self):
        body = body_with_pcs([
            ti(Opcode.LDQ, rd=2, ra=1, disp=0),
            ti(Opcode.LDQ, rd=3, ra=1, disp=256),
            ti(Opcode.LDA, rd=1, ra=1, disp=64),
            ti(Opcode.BNE, ra=4, target=0),
        ])
        loads = collect_loads(body)
        classify_loads(body, loads, {0}, dlt=None)  # only pc 0 delinquent
        groups = build_groups(loads)
        assert groups[0].sorted_offsets() == [0]

    def test_first_index_is_insertion_point(self):
        body = stride_loop_body()
        loads = collect_loads(body)
        classify_loads(body, loads, {0, 1}, dlt=None)
        groups = build_groups(loads)
        assert groups[0].first_index == 0
