"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.harness import cache as _cache


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path_factory, monkeypatch):
    """Keep every test away from the user's real result cache: point
    REPRO_CACHE_DIR at a session-scoped temp directory (shared within
    the session so baseline-reuse still works across tests)."""
    root = tmp_path_factory.getbasetemp() / "repro-cache"
    monkeypatch.setenv(_cache.ENV_CACHE_DIR, str(root))

from repro.config import (
    DLTConfig,
    MachineConfig,
    SimulationConfig,
    TridentConfig,
)
from repro.isa.assembler import Assembler
from repro.memory.mainmem import DataMemory, HeapAllocator


@pytest.fixture
def machine() -> MachineConfig:
    return MachineConfig.paper_baseline()


@pytest.fixture
def trident() -> TridentConfig:
    return TridentConfig.paper_default()


@pytest.fixture
def memory() -> DataMemory:
    return DataMemory()


@pytest.fixture
def alloc(memory) -> HeapAllocator:
    return HeapAllocator(memory)


def simple_stride_program(
    iters: int = 10_000, base: int = 0x10000, stride: int = 8
):
    """A minimal hot loop: one strided load per iteration.

    Returns the assembled program; memory contents are irrelevant (reads
    of unmapped words are zero).
    """
    asm = Assembler("stride_loop")
    asm.li("r1", base)
    asm.li("r2", iters)
    asm.label("loop")
    asm.ldq("r3", "r1", 0)
    asm.addq("r11", "r11", rb="r3")
    asm.lda("r1", "r1", stride)
    asm.subq("r2", "r2", imm=1)
    asm.bne("r2", "loop")
    asm.halt()
    return asm.build()


def pointer_chase_program(iters: int = 5_000):
    """A chase loop over a list the caller must build at HEAP_BASE."""
    asm = Assembler("chase_loop")
    asm.li("r1", 0x10000)
    asm.li("r2", iters)
    asm.label("loop")
    asm.ldq("r3", "r1", 8)
    asm.addq("r11", "r11", rb="r3")
    asm.ldq("r1", "r1", 0)
    asm.subq("r2", "r2", imm=1)
    asm.bne("r2", "loop")
    asm.halt()
    return asm.build()
