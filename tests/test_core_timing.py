"""Tests for the SMT core's dataflow timing model."""

import pytest

from repro.config import MachineConfig
from repro.cpu.core import SMTCore
from repro.isa.assembler import Assembler
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.mainmem import DataMemory

from conftest import simple_stride_program


def run_program(program, config=None, max_instructions=1_000_000):
    config = config or MachineConfig()
    memory = DataMemory()
    hierarchy = MemoryHierarchy(config)
    core = SMTCore(program, memory, hierarchy, config)
    core.run(max_instructions)
    return core


class TestBasicExecution:
    def test_halt_terminates(self):
        asm = Assembler("t")
        asm.li("r1", 5)
        asm.halt()
        core = run_program(asm.build())
        assert core.stats.committed == 2
        assert core.ctx.halted

    def test_budget_terminates(self):
        program = simple_stride_program(iters=100_000)
        core = run_program(program, max_instructions=500)
        assert core.stats.committed == 500
        assert not core.ctx.halted

    def test_loop_computes_correctly(self):
        asm = Assembler("t")
        asm.li("r1", 10)
        asm.label("loop")
        asm.addq("r2", "r2", imm=3)
        asm.subq("r1", "r1", imm=1)
        asm.bne("r1", "loop")
        asm.halt()
        core = run_program(asm.build())
        assert core.ctx.regs[2] == 30

    def test_issue_width_bounds_ipc(self):
        # Pure independent ALU code can at best hit the issue width.
        asm = Assembler("t")
        asm.li("r1", 10_000)
        asm.label("loop")
        for reg in range(2, 10):
            asm.addq(f"r{reg}", f"r{reg}", imm=1)
        asm.subq("r1", "r1", imm=1)
        asm.bne("r1", "loop")
        asm.halt()
        core = run_program(asm.build())
        ipc = core.stats.committed / core.cycles
        assert ipc <= MachineConfig().issue_width + 0.01
        assert ipc > 1.5  # and reasonably pipelined


class TestMemoryTiming:
    def test_misses_slow_execution(self):
        fast = run_program(simple_stride_program(iters=5_000, stride=0))
        slow = run_program(simple_stride_program(iters=5_000, stride=64))
        # stride 0 = same line every time (hits); stride 64 = a memory
        # miss per iteration.
        assert fast.cycles < slow.cycles / 2

    def test_dependent_chain_serialises_misses(self):
        """A pointer chase cannot overlap its misses; a strided scan can."""
        from repro.memory.mainmem import HeapAllocator
        from repro.workloads.data import build_linked_list
        import random

        config = MachineConfig()
        # Chase: 2000 nodes, each on its own line.
        memory = DataMemory()
        alloc = HeapAllocator(memory)
        head, _ = build_linked_list(
            alloc, node_words=8, count=2_000, rng=random.Random(1),
            scramble=True,
        )
        asm = Assembler("chase")
        asm.li("r1", head)
        asm.li("r2", 2_000)
        asm.label("loop")
        asm.ldq("r1", "r1", 0)
        asm.subq("r2", "r2", imm=1)
        asm.bne("r2", "loop")
        asm.halt()
        chase = SMTCore(
            asm.build(), memory, MemoryHierarchy(config), config
        )
        chase.run(10_000)

        scan = run_program(
            simple_stride_program(iters=2_000, stride=64),
            max_instructions=12_000,
        )
        chase_cpi = chase.cycles / chase.stats.committed
        scan_cpi = scan.cycles / scan.stats.committed
        # The serialized chase pays full latency per node; the scan
        # overlaps fills in the ROB window.
        assert chase_cpi > 3 * scan_cpi

    def test_rob_bounds_runahead(self):
        """With a giant ROB the scan overlaps more misses than with a
        small one."""
        import dataclasses

        small = dataclasses.replace(MachineConfig(), rob_entries=32)
        big = dataclasses.replace(MachineConfig(), rob_entries=512)
        program = simple_stride_program(iters=4_000, stride=64)
        core_small = run_program(program, config=small)
        core_big = run_program(program, config=big)
        assert core_big.cycles < core_small.cycles


class TestBranchPrediction:
    def test_predictable_loop_few_mispredicts(self):
        core = run_program(simple_stride_program(iters=5_000, stride=0))
        rate = (
            core.stats.branch_mispredicts / core.stats.conditional_branches
        )
        assert rate < 0.01

    def test_alternating_branch_mispredicts(self):
        asm = Assembler("t")
        asm.li("r1", 4_000)
        asm.label("loop")
        asm.and_("r2", "r1", imm=1)
        asm.beq("r2", "skip")
        asm.addq("r3", "r3", imm=1)
        asm.label("skip")
        asm.subq("r1", "r1", imm=1)
        asm.bne("r1", "loop")
        asm.halt()
        core = run_program(asm.build())
        rate = (
            core.stats.branch_mispredicts / core.stats.conditional_branches
        )
        assert rate > 0.2

    def test_mispredicts_cost_cycles(self):
        def loop(body_branch_alternates):
            asm = Assembler("t")
            asm.li("r1", 4_000)
            asm.label("loop")
            if body_branch_alternates:
                asm.and_("r2", "r1", imm=1)
            else:
                asm.li("r2", 0)
            asm.beq("r2", "skip")
            asm.addq("r3", "r3", imm=1)
            asm.label("skip")
            asm.subq("r1", "r1", imm=1)
            asm.bne("r1", "loop")
            asm.halt()
            return asm.build()

        good = run_program(loop(False))
        bad = run_program(loop(True))
        assert bad.cycles > good.cycles * 1.3


class TestSnapshots:
    def test_snapshot_interval(self):
        program = simple_stride_program(iters=50_000)
        config = MachineConfig()
        memory = DataMemory()
        core = SMTCore(program, memory, MemoryHierarchy(config), config)
        core.run(1_000)
        c1, t1 = core.snapshot()
        core.run(2_000)
        c2, t2 = core.snapshot()
        assert c2 - c1 == 1_000
        assert t2 > t1
