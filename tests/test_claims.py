"""Tests for the claim-grading harness."""

import pytest

from repro.harness.claims import (
    CLAIMS,
    Verdict,
    evaluate_claims,
    render_verdicts,
)


class TestClaimDefinitions:
    def test_idents_unique(self):
        idents = [c.ident for c in CLAIMS]
        assert len(idents) == len(set(idents))

    def test_statements_nonempty(self):
        assert all(len(c.statement) > 10 for c in CLAIMS)

    def test_headline_claims_present(self):
        idents = {c.ident for c in CLAIMS}
        assert "fig5-headline" in idents
        assert "s5.1-overhead" in idents


class TestEvaluation:
    @pytest.fixture(scope="class")
    def verdicts(self):
        # Tiny budgets: this checks plumbing, not shapes.
        return evaluate_claims(
            workloads=["swim"], max_instructions=8_000, warmup=8_000
        )

    def test_every_claim_graded(self, verdicts):
        assert len(verdicts) == len(CLAIMS)
        assert all(isinstance(v, Verdict) for v in verdicts)
        assert all(v.detail for v in verdicts)

    def test_render(self, verdicts):
        text = render_verdicts(verdicts)
        assert "Paper claims:" in text
        for verdict in verdicts:
            assert verdict.claim.ident in text
        assert "REPRODUCED" in text or "DEVIATES" in text
