"""Tests for the workload base helpers."""

import pytest

from repro.cpu.context import ThreadContext
from repro.cpu.executor import Executor
from repro.isa.opcodes import Opcode
from repro.memory.mainmem import DataMemory
from repro.workloads.base import (
    Workload,
    counted_loop,
    new_parts,
)


class TestNewParts:
    def test_parts_are_wired_together(self):
        parts = new_parts("x", seed=9)
        assert parts.alloc.memory is parts.memory
        assert parts.asm.name == "x"
        # Seeded rng is deterministic.
        assert parts.rng.random() == new_parts("x", seed=9).rng.random()


class TestCountedLoop:
    def test_emits_closed_loop(self):
        parts = new_parts("t", 1)
        asm = parts.asm
        close = counted_loop(asm, "r1", 5, "loop")
        asm.addq("r2", "r2", imm=1)
        close()
        asm.halt()
        program = asm.build()
        # li, [head] addq, subq, bne, halt
        assert program.label_pc("loop") == 1
        bne = program.instructions[3]
        assert bne.opcode is Opcode.BNE
        assert bne.target == 1

    def test_loop_runs_exactly_count_times(self):
        parts = new_parts("t", 1)
        asm = parts.asm
        close = counted_loop(asm, "r1", 7, "loop")
        asm.addq("r2", "r2", imm=1)
        close()
        asm.halt()
        program = asm.build()
        ctx = ThreadContext()
        executor = Executor(DataMemory())
        pc = 0
        for _ in range(200):
            inst = program.instructions[pc]
            res = executor.execute(inst, ctx)
            if ctx.halted:
                break
            if res.taken is True and inst.target is not None:
                pc = inst.target
            elif res.taken is False or res.taken is None:
                pc += 1
        assert ctx.halted
        assert ctx.regs[2] == 7

    def test_back_edge_is_conditional_backward(self):
        """The profiler's head-detection contract."""
        parts = new_parts("t", 1)
        asm = parts.asm
        close = counted_loop(asm, "r1", 3, "loop")
        asm.nop()
        close()
        asm.halt()
        program = asm.build()
        back_edges = [
            (pc, inst)
            for pc, inst in enumerate(program.instructions)
            if inst.is_conditional_branch and inst.target < pc
        ]
        assert len(back_edges) == 1


class TestWorkloadDataclass:
    def test_fields(self):
        parts = new_parts("t", 1)
        parts.asm.halt()
        w = Workload(
            name="t",
            program=parts.asm.build(),
            memory=parts.memory,
            description="d",
            kind="stride",
            paper_notes="n",
        )
        assert w.name == "t"
        assert w.paper_notes == "n"
