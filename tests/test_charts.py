"""Tests for the ASCII chart renderers."""

from repro.harness.charts import bar_chart, grouped_bar_chart


class TestBarChart:
    def test_simple_bars_scale_to_peak(self):
        text = bar_chart("T", [("a", 1.0), ("b", 2.0)], width=10)
        lines = text.splitlines()
        assert lines[0] == "T"
        a_bar = lines[2].count("#")
        b_bar = lines[3].count("#")
        assert b_bar == 10 and a_bar == 5

    def test_baseline_mode_signs(self):
        text = bar_chart(
            "T", [("up", 1.5), ("down", 0.5)], baseline=1.0, width=8
        )
        assert "+" in text.splitlines()[2]
        assert "-" in text.splitlines()[3]

    def test_empty_rows(self):
        assert bar_chart("T", []) == "T"

    def test_unit_suffix(self):
        text = bar_chart("T", [("a", 2.0)], unit="x")
        assert "2x" in text


class TestGroupedBarChart:
    def test_legend_and_values(self):
        text = grouped_bar_chart(
            "chart",
            [("mcf", {"hw": 2.0, "sw": 3.0})],
            series=["hw", "sw"],
        )
        assert "# = hw" in text
        assert "= = sw" in text
        assert "+100.0%" in text and "+200.0%" in text

    def test_below_baseline_rendered_dotted(self):
        text = grouped_bar_chart(
            "chart",
            [("x", {"s": 0.5})],
            series=["s"],
        )
        row = [l for l in text.splitlines() if l.startswith("x")][0]
        assert "." in row and "-50.0%" in row

    def test_near_zero_deltas_have_no_bar(self):
        text = grouped_bar_chart(
            "chart",
            [("x", {"s": 1.001})],
            series=["s"],
        )
        row = [l for l in text.splitlines() if l.startswith("x")][0]
        assert "#" not in row

    def test_missing_series_skipped(self):
        text = grouped_bar_chart(
            "chart",
            [("x", {"a": 1.2})],
            series=["a", "b"],
        )
        rows = [l for l in text.splitlines() if l.startswith("x")]
        assert len(rows) == 1
