"""Differential proof that the engine's three execution paths match the
legacy serial harness bit for bit.

For a grid of (workload, policy) pairs, the full
``SimulationResult.to_dict()`` payload must be byte-identical across:

* the legacy serial ``run_simulation`` call,
* the engine in-process (``workers=1``),
* the engine fanned out over a process pool (``workers=4``),
* a cached replay (second engine run over the same warm cache).

Any divergence — float re-derivation, pickling loss, nondeterministic
ordering, worker-side observation — shows up as a failed string compare.
"""

from __future__ import annotations

import json

import pytest

from repro.config import PrefetchPolicy
from repro.harness.cache import ResultCache
from repro.harness.engine import ExperimentEngine, make_job
from repro.harness.runner import run_simulation

WORKLOADS = ["art", "dot", "mcf"]
POLICIES = [PrefetchPolicy.HW_ONLY, PrefetchPolicy.SELF_REPAIRING]
BUDGET = 3_000
WARMUP = 500


def _canon(result) -> str:
    # No sort_keys: dict ordering is part of the contract (the CLI's
    # --json output must not depend on whether the result was cached).
    return json.dumps(result.to_dict())


def _jobs():
    return [
        make_job(
            name, policy=policy,
            max_instructions=BUDGET, warmup_instructions=WARMUP,
        )
        for name in WORKLOADS
        for policy in POLICIES
    ]


@pytest.fixture(scope="module")
def legacy_payloads():
    """The ground truth: one serial run_simulation per grid cell."""
    return [
        _canon(run_simulation(
            name, policy=policy,
            max_instructions=BUDGET, warmup_instructions=WARMUP,
        ))
        for name in WORKLOADS
        for policy in POLICIES
    ]


def test_inprocess_engine_matches_legacy(legacy_payloads, tmp_path):
    engine = ExperimentEngine(workers=1, cache=ResultCache(tmp_path))
    results = engine.run_all(_jobs())
    assert [_canon(r) for r in results] == legacy_payloads
    assert engine.stats.jobs_run == len(legacy_payloads)


def test_parallel_engine_matches_legacy(legacy_payloads, tmp_path):
    engine = ExperimentEngine(workers=4, cache=ResultCache(tmp_path))
    results = engine.run_all(_jobs())
    assert [_canon(r) for r in results] == legacy_payloads


def test_cached_replay_matches_legacy(legacy_payloads, tmp_path):
    cache = ResultCache(tmp_path)
    ExperimentEngine(workers=1, cache=cache).run_all(_jobs())

    replay_engine = ExperimentEngine(workers=1, cache=cache)
    results = replay_engine.run_all(_jobs())
    assert [_canon(r) for r in results] == legacy_payloads
    # Every job must have come from the cache, none re-simulated.
    assert replay_engine.stats.jobs_cached == len(legacy_payloads)
    assert replay_engine.stats.jobs_run == 0


def test_replayed_result_supports_derived_accessors(tmp_path):
    """Replayed results answer the same questions live ones do."""
    cache = ResultCache(tmp_path)
    job = make_job(
        "art", policy=PrefetchPolicy.SELF_REPAIRING,
        max_instructions=BUDGET, warmup_instructions=WARMUP,
    )
    live = ExperimentEngine(cache=cache).run_all([job])[0]
    replayed = ExperimentEngine(cache=cache).run([job])[0]
    assert replayed.cached
    live_base = run_simulation(
        "art", policy=PrefetchPolicy.HW_ONLY,
        max_instructions=BUDGET, warmup_instructions=WARMUP,
    )
    assert replayed.result.speedup_over(live_base) == pytest.approx(
        live.speedup_over(live_base)
    )
    assert replayed.result.breakdown() == live.breakdown()
    assert replayed.result.policy is PrefetchPolicy.SELF_REPAIRING
