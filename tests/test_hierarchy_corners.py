"""Corner cases of the memory hierarchy and its prefetcher coupling."""

import pytest

from repro.config import MachineConfig, StreamBufferConfig
from repro.hwprefetch.stream_buffer import StreamBufferPrefetcher
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.stats import OutcomeKind


@pytest.fixture
def hier():
    return MemoryHierarchy(MachineConfig())


class TestFillBusRules:
    def test_l2_sourced_fill_skips_bus(self, hier):
        # Warm a line into L2/L3, evict from L1, then re-fetch: the fill
        # must not inherit bus queueing delay from unrelated DRAM fills.
        hier.load(1, 0x10000, 0)
        hier.drain(1_000)
        way = 512 * 64
        hier.load(1, 0x10000 + way, 1_000)
        hier.load(1, 0x10000 + 2 * way, 1_001)
        hier.drain(10_000)
        # Saturate the bus with DRAM prefetches.
        for i in range(20):
            hier.software_prefetch(0x900000 + i * 64, 10_000)
        out = hier.load(1, 0x10000, 10_001)
        assert out.level == "l2"
        # An L2 hit costs its latency, not the DRAM queue.
        assert out.latency <= hier.config.l2.latency + 1

    def test_dram_fills_queue_on_bus(self, hier):
        outs = [
            hier.load(1, 0x800000 + i * 64, 0) for i in range(4)
        ]
        latencies = [o.latency for o in outs]
        assert latencies == sorted(latencies)
        spread = latencies[-1] - latencies[0]
        assert spread >= 3 * hier.config.bus_transfer_cycles

    def test_store_to_pending_line_does_not_duplicate(self, hier):
        hier.load(1, 0x10000, 0)
        pending_before = hier.outstanding_fills
        hier.store(0x10008, 1)
        assert hier.outstanding_fills == pending_before


class TestSyntheticLoads:
    def test_synthetic_load_moves_lines(self, hier):
        out = hier.load_synthetic(0x10000, 0)
        assert out.kind is OutcomeKind.MISS
        hier.drain(10_000)
        assert hier.l1.contains(0x10000)
        assert hier.stats.total_loads == 0

    def test_synthetic_load_does_not_train_prefetcher(self):
        machine = MachineConfig()
        hier = MemoryHierarchy(machine)
        sb = StreamBufferPrefetcher(
            machine.stream_buffers, hier, machine.line_size
        )
        hier.stream_prefetcher = sb
        addr = 0x10000
        for i in range(10):
            hier.load_synthetic(addr, i * 500)
            addr += 64
        assert sb.allocations == 0
        assert sb.predictor.updates == 0


class TestStreamBufferCoupling:
    def make(self):
        machine = MachineConfig()
        hier = MemoryHierarchy(machine)
        sb = StreamBufferPrefetcher(
            machine.stream_buffers, hier, machine.line_size
        )
        hier.stream_prefetcher = sb
        return hier, sb

    def test_buffer_skips_software_covered_lines(self):
        hier, sb = self.make()
        # Train the PC's stride confidence far away from the target region.
        train = 0x900000
        for i in range(5):
            hier.load(9, train + i * 64, i * 400)
        # Software prefetches already cover lines 1..4 of the new region.
        base = 0x100000
        for i in range(1, 5):
            hier.software_prefetch(base + i * 64, 3_000)
        # The first demand miss in the region allocates a fresh buffer;
        # priming must skip the software-covered lines entirely.
        hier.load(9, base, 3_001)
        new_buffer = sb._block_map.get(base + 5 * 64)
        assert new_buffer is not None
        covered = {base + i * 64 for i in range(1, 5)}
        assert not covered & set(new_buffer.blocks)
        assert min(new_buffer.blocks) >= base + 5 * 64

    def test_hardware_prefetch_counts_only_new_fills(self):
        hier, sb = self.make()
        hier.software_prefetch(0x200000, 0)
        assert not hier.hardware_prefetch(0x200000, 1)
        assert hier.hardware_prefetch(0x200040, 1)

    def test_block_map_consistent_after_replacement(self):
        hier, sb = self.make()
        cycle = 0
        # Twelve streams force buffer replacement.
        for i in range(40):
            for s in range(12):
                hier.load(100 + s, 0x100000 + s * 0x200000 + i * 64, cycle)
                cycle += 40
        for block, buf in sb._block_map.items():
            assert block in buf.blocks
        for buf in sb._buffers:
            if buf is None:
                continue
            for block in buf.blocks:
                assert sb._block_map.get(block) is buf
