"""Differential scenario fuzzing: hunt divergence across the whole stack.

Hypothesis composes random-but-valid :class:`ScenarioSpec`s straight
from the primitive schema — arbitrary phase nesting, layouts, strides,
footprints — compiles each to a workload, and drives three oracles:

* **fast vs slow** — both interpreters must produce byte-identical
  ``SimulationResult`` payloads on every generated scenario;
* **resume vs cold** — a run captured at budget B1 and resumed to B2
  must equal the cold B2 run byte-for-byte;
* **SELF_REPAIRING vs BASIC** — not an invariant (a repairing
  prefetcher *can* lose on adversarial patterns); losses are recorded,
  not failed.

Any failing example is minimized by Hypothesis and written to
``REPRO_FUZZ_REPRO_DIR`` (default ``tests/data/fuzz_repros``) as a
runnable scenario JSON: ``repro run --scenario <file>`` reproduces it
exactly.  The example budget scales with ``REPRO_FUZZ_EXAMPLES`` (CI
runs 200 with ``derandomize`` so the corpus is fixed and the job is
reproducible; the local default keeps the suite fast).
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.checkpoint import capture, restore
from repro.config import PrefetchPolicy, SimulationConfig
from repro.harness.runner import Simulation
from repro.hwprefetch.zoo import resolve_policy, zoo_names
from repro.scenarios import Phase, Primitive, ScenarioSpec

#: Simulation budgets: small enough to keep hundreds of examples cheap,
#: large enough to cross phase boundaries and form traces.
B1, B2, WARMUP = 800, 1_600, 200

MAX_EXAMPLES = int(os.environ.get("REPRO_FUZZ_EXAMPLES", "25"))
REPRO_DIR = pathlib.Path(
    os.environ.get(
        "REPRO_FUZZ_REPRO_DIR",
        pathlib.Path(__file__).parent / "data" / "fuzz_repros",
    )
)

FUZZ_SETTINGS = settings(
    max_examples=MAX_EXAMPLES,
    deadline=None,
    derandomize=True,  # fixed corpus: CI failures reproduce exactly
    suppress_health_check=[HealthCheck.too_slow],
)

#: The zoo oracles multiply by every registered policy, so each gets a
#: slice of the example budget rather than the full allowance.
ZOO_FUZZ_SETTINGS = settings(
    max_examples=max(5, MAX_EXAMPLES // 5),
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)

# ---------------------------------------------------------------------------
# Spec strategy: mirrors PRIMITIVE_PARAMS with fuzz-sized bounds, so
# shrinking reduces scenario complexity (fewer phases, smaller
# footprints), not just a seed number.
# ---------------------------------------------------------------------------

_iters = st.integers(min_value=4, max_value=192)
_layouts = st.sampled_from(("seq", "segment", "scramble"))

_primitives = st.one_of(
    st.builds(
        lambda i, s, l: Primitive(
            "stride", {"iters": i, "stride": s, "loads": l}
        ),
        _iters,
        st.sampled_from((1, 2, 4, 8, 16, 32)),
        st.integers(min_value=1, max_value=3),
    ),
    st.builds(
        lambda i, n, w, lay, f: Primitive(
            "pointer_chase",
            {"iters": i, "nodes": n, "node_words": w, "layout": lay,
             "field_loads": f},
        ),
        _iters,
        st.integers(min_value=8, max_value=1024),
        st.sampled_from((2, 4, 8, 16)),
        _layouts,
        st.integers(min_value=0, max_value=2),
    ),
    st.builds(
        lambda i, n, w, lay: Primitive(
            "same_object",
            {"iters": i, "nodes": n, "node_words": w, "layout": lay},
        ),
        _iters,
        st.integers(min_value=8, max_value=1024),
        st.sampled_from((4, 8, 16)),
        _layouts,
    ),
    st.builds(
        lambda i, bits: Primitive(
            "hash_walk", {"iters": i, "table_words": 1 << bits}
        ),
        _iters,
        st.integers(min_value=10, max_value=16),
    ),
    st.builds(
        lambda steps, start, stride, i: Primitive(
            "footprint_ramp",
            {"steps": steps, "start_words": start, "stride": stride,
             "iters": i},
        ),
        st.integers(min_value=1, max_value=4),
        st.sampled_from((64, 256, 1024)),
        st.sampled_from((1, 2, 4, 8)),
        st.integers(min_value=4, max_value=64),
    ),
)

_phases = st.builds(
    Phase,
    st.lists(_primitives, min_size=1, max_size=3),
    repeats=st.integers(min_value=1, max_value=3),
)

specs = st.builds(
    ScenarioSpec,
    name=st.just("fuzzed"),
    phases=st.lists(_phases, min_size=1, max_size=3),
    repeats=st.just(100_000),
)


def _record_repro(spec: ScenarioSpec, reason: str, suffix: str) -> pathlib.Path:
    """Write the offending spec as a runnable scenario file."""
    REPRO_DIR.mkdir(parents=True, exist_ok=True)
    digest = __import__("hashlib").sha256(
        spec.canonical_json().encode()
    ).hexdigest()[:12]
    path = REPRO_DIR / f"{suffix}_{digest}.json"
    payload = spec.to_dict()
    payload["description"] = f"fuzz repro: {reason}"
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return path


def _run(spec, policy, budget, fast=True, sink=None):
    policy, hw_prefetcher = resolve_policy(policy)
    sim = Simulation(
        spec.build(seed=1),
        SimulationConfig(
            policy=policy,
            hw_prefetcher=hw_prefetcher,
            max_instructions=budget,
            warmup_instructions=WARMUP,
            fast=fast,
            wall_time_limit=120.0,
        ),
    )
    if sink is not None:
        sim.checkpoint_sink = sink
    return sim, sim.run()


def test_repro_files_are_runnable_scenarios(tmp_path, monkeypatch):
    """The divergence-recording path itself: a written repro must load
    back as a valid, buildable ScenarioSpec (else a real divergence
    would leave an unusable artifact)."""
    monkeypatch.setattr(
        __import__("sys").modules[__name__], "REPRO_DIR", tmp_path
    )
    spec = ScenarioSpec(
        name="fuzzed",
        phases=[Phase([Primitive("stride", {"iters": 8})])],
    )
    path = _record_repro(spec, "unit-test divergence", "unit")
    loaded = ScenarioSpec.load(path)
    assert loaded.phases == spec.phases
    assert "unit-test divergence" in loaded.description
    assert loaded.build(seed=1).program.instructions


@given(spec=specs)
@FUZZ_SETTINGS
def test_fast_slow_never_diverge(spec):
    """Oracle 1: both interpreters agree on every generated scenario."""
    _, fast = _run(spec, PrefetchPolicy.SELF_REPAIRING, B2, fast=True)
    _, slow = _run(spec, PrefetchPolicy.SELF_REPAIRING, B2, fast=False)
    if fast.to_dict() != slow.to_dict():
        path = _record_repro(spec, "fast vs slow divergence", "fastslow")
        raise AssertionError(
            f"fast/slow interpreter divergence; repro written to {path}"
        )


@given(spec=specs)
@FUZZ_SETTINGS
def test_resume_never_diverges_from_cold(spec):
    """Oracle 2: capture at B1, resume to B2, equals cold B2."""
    _, cold = _run(spec, PrefetchPolicy.SELF_REPAIRING, B2)
    captured = []
    sink = lambda s: bool(captured.append(capture(s))) or True  # noqa: E731
    _run(spec, PrefetchPolicy.SELF_REPAIRING, B1, sink=sink)
    assert captured, "end-of-run capture must fire"
    resumed = restore(captured[-1]).resume(B2)
    if resumed.to_dict() != cold.to_dict():
        path = _record_repro(spec, "resume vs cold divergence", "resume")
        raise AssertionError(
            f"resume/cold divergence; repro written to {path}"
        )


@given(spec=specs)
@FUZZ_SETTINGS
def test_self_repairing_losses_are_recorded(spec):
    """Oracle 3: where SELF_REPAIRING loses to BASIC, keep the evidence.

    Not an invariant — the paper itself reports per-benchmark losses —
    so a loss writes a runnable repro file instead of failing.  What
    *is* asserted: both policies complete, and the loss (if any) stays
    inside the plausible overhead envelope rather than signalling a
    runaway (e.g. repair loop thrash).
    """
    _, basic = _run(spec, PrefetchPolicy.BASIC, B2)
    _, sr = _run(spec, PrefetchPolicy.SELF_REPAIRING, B2)
    assert basic.instructions == sr.instructions
    if sr.cycles > basic.cycles:
        _record_repro(
            spec,
            f"SELF_REPAIRING {sr.cycles:.0f} cycles vs BASIC "
            f"{basic.cycles:.0f}",
            "srloss",
        )
    assert sr.cycles <= basic.cycles * 2.0, (
        "SELF_REPAIRING runaway: more than 2x BASIC cycles "
        f"({sr.cycles:.0f} vs {basic.cycles:.0f})"
    )


# ---------------------------------------------------------------------------
# Zoo oracles: the same differential discipline for every registered
# hardware-prefetcher policy.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("zoo_policy", zoo_names())
@given(spec=specs)
@ZOO_FUZZ_SETTINGS
def test_zoo_fast_slow_never_diverge(zoo_policy, spec):
    """Zoo engines hook the hierarchy, not the interpreters — fast and
    slow runs must stay byte-identical for each of them on arbitrary
    generated scenarios."""
    _, fast = _run(spec, zoo_policy, B2, fast=True)
    _, slow = _run(spec, zoo_policy, B2, fast=False)
    if fast.to_dict() != slow.to_dict():
        path = _record_repro(
            spec,
            f"fast vs slow divergence under {zoo_policy}",
            f"fastslow_{zoo_policy}",
        )
        raise AssertionError(
            f"{zoo_policy}: fast/slow divergence; repro written to {path}"
        )


@pytest.mark.parametrize("zoo_policy", zoo_names())
@given(spec=specs)
@ZOO_FUZZ_SETTINGS
def test_zoo_resume_never_diverges_from_cold(zoo_policy, spec):
    """Zoo engine state (GHB rings, metadata tables, degree machines)
    rides inside the snapshot; resume must equal the cold run."""
    _, cold = _run(spec, zoo_policy, B2)
    captured = []
    sink = lambda s: bool(captured.append(capture(s))) or True  # noqa: E731
    _run(spec, zoo_policy, B1, sink=sink)
    assert captured, "end-of-run capture must fire"
    resumed = restore(captured[-1]).resume(B2)
    if resumed.to_dict() != cold.to_dict():
        path = _record_repro(
            spec,
            f"resume vs cold divergence under {zoo_policy}",
            f"resume_{zoo_policy}",
        )
        raise AssertionError(
            f"{zoo_policy}: resume/cold divergence; repro written to {path}"
        )


@pytest.mark.parametrize("zoo_policy", zoo_names())
@given(spec=specs)
@ZOO_FUZZ_SETTINGS
def test_zoo_losses_are_recorded(zoo_policy, spec):
    """Where a zoo engine loses to the software BASIC policy, keep the
    evidence as a runnable repro — losses are data (the tournament
    already shows most zoo engines trail the tuned stream buffers), not
    failures.  What *is* asserted: both policies complete the same
    instruction budget."""
    _, basic = _run(spec, PrefetchPolicy.BASIC, B2)
    _, zoo = _run(spec, zoo_policy, B2)
    assert basic.instructions == zoo.instructions
    if zoo.cycles > basic.cycles:
        _record_repro(
            spec,
            f"{zoo_policy} {zoo.cycles:.0f} cycles vs BASIC "
            f"{basic.cycles:.0f}",
            f"zooloss_{zoo_policy}",
        )
