"""Integration tests: observability against live simulations.

The two invariants that make the layer trustworthy:

* **zero perturbation** — a run with an observer attached (sampling
  included) is bit-for-bit identical to a run without one;
* **determinism** — two observed runs of the same configuration export
  byte-identical JSONL event streams.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.config import PrefetchPolicy
from repro.harness.report import render_timeline
from repro.harness.runner import run_simulation
from repro.obs import Observer, validate_chrome_trace, write_jsonl

WORKLOAD = "mcf"
BUDGET = 40_000
WARMUP = 10_000


def _observed_run(sample_interval=5_000, **kwargs):
    obs = Observer(sample_interval=sample_interval)
    result = run_simulation(
        WORKLOAD,
        max_instructions=BUDGET,
        warmup_instructions=WARMUP,
        observer=obs,
        **kwargs,
    )
    return result, obs


class TestZeroPerturbation:
    def test_enabled_run_matches_disabled_bit_for_bit(self):
        plain = run_simulation(
            WORKLOAD, max_instructions=BUDGET, warmup_instructions=WARMUP
        )
        observed, obs = _observed_run()
        assert observed.ipc == plain.ipc
        assert observed.cycles == plain.cycles
        assert observed.instructions == plain.instructions
        assert observed.memory.breakdown() == plain.memory.breakdown()
        assert obs.ring.total_emitted > 0  # it really was observing

    def test_disabled_overhead_within_tolerance(self):
        """The disabled fast path (one attribute check per hook) must not
        cost measurably more than the seed's unhooked code.  Wall-clock
        comparison with generous slack: the strong guarantee is the
        bit-for-bit test above; this one catches accidental work (dict
        lookups, string formatting) on the None path."""
        def timed(**kwargs):
            t0 = time.perf_counter()
            run_simulation(WORKLOAD, max_instructions=50_000, **kwargs)
            return time.perf_counter() - t0

        # Interleave the two configurations so slow host drift (thermal
        # throttling, co-tenant load) hits both sides equally, and take
        # the best of each: scheduler jitter only ever adds time.
        disabled_times, enabled_times = [], []
        for _ in range(5):
            disabled_times.append(timed())
            enabled_times.append(timed(observer=Observer()))
        disabled = min(disabled_times)
        enabled = min(enabled_times)
        # Disabled must beat enabled-with-full-tracing plus 25% slack --
        # if the None path were doing real work the two would diverge
        # far beyond that.  (Generous slack because the decoded fast
        # path made these runs short enough that noise is a large
        # fraction of each measurement; the bit-for-bit test above is
        # the strong guarantee.)
        assert disabled <= enabled * 1.25

    def test_sampling_does_not_perturb_timing(self):
        plain = run_simulation(WORKLOAD, max_instructions=BUDGET)
        sampled = run_simulation(
            WORKLOAD, max_instructions=BUDGET, sample_interval=4_000
        )
        assert sampled.ipc == plain.ipc
        assert sampled.cycles == plain.cycles


class TestDeterminism:
    def test_two_runs_export_identical_jsonl(self, tmp_path):
        paths = []
        for i in range(2):
            _result, obs = _observed_run()
            path = tmp_path / f"run{i}.jsonl"
            write_jsonl(obs.events(), str(path))
            paths.append(path)
        a, b = (p.read_bytes() for p in paths)
        assert a == b
        assert a  # non-empty

    def test_snapshots_identical(self):
        snaps = [json.dumps(_observed_run()[1].snapshot(), sort_keys=True)
                 for _ in range(2)]
        assert snaps[0] == snaps[1]


class TestSampling:
    def test_sample_count_and_series(self):
        result, obs = _observed_run(sample_interval=5_000)
        assert len(result.samples) == BUDGET // 5_000
        # Windows tile the measured region exactly.
        assert sum(s.instructions for s in result.samples) == BUDGET
        assert result.samples[-1].end_instruction == WARMUP + BUDGET
        ipcs = obs.sampler.series("ipc")
        assert len(ipcs) == len(result.samples)
        assert all(ipc > 0 for ipc in ipcs)
        # Serialisable and carried into the result dict.
        assert len(result.to_dict()["samples"]) == len(result.samples)

    def test_sample_events_emitted(self):
        _result, obs = _observed_run(sample_interval=10_000)
        kinds = [e.kind for e in obs.events() if e.kind == "sample"]
        assert len(kinds) == BUDGET // 10_000


class TestEventStream:
    def test_repair_vocabulary_present(self):
        result, obs = _observed_run()
        kinds = {e.kind for e in obs.events()}
        assert {"fill", "trace_link", "trace_enter", "dl_event",
                "insert", "repair", "helper_begin", "helper_end"} <= kinds
        assert result.repairs_applied > 0

    def test_repair_events_stamped_at_job_completion(self):
        _result, obs = _observed_run()
        ends = {
            e.cycle for e in obs.events() if e.kind == "helper_end"
        }
        repair_cycles = [
            e.cycle for e in obs.events() if e.kind == "repair"
        ]
        assert repair_cycles
        assert all(c in ends for c in repair_cycles)

    def test_timelines_track_distance_search(self):
        result, obs = _observed_run()
        timelines = obs.timelines.timelines()
        assert timelines
        trajectory = timelines[0].distance_trajectory()
        # Starts at the self-repairing initial distance and climbs.
        assert trajectory[0][1] == 1
        assert trajectory[-1][1] > 1
        cycles = [c for c, _d in trajectory]
        assert cycles == sorted(cycles)
        text = render_timeline(obs.timelines.to_dicts())
        assert "insert" in text and "repair" in text

    def test_metrics_agree_with_result(self):
        result, obs = _observed_run()
        snap = obs.metrics.snapshot()
        assert snap["counters"]["optimizer.repairs"] == (
            result.repairs_applied
        )
        assert snap["counters"]["trident.dl_events"] > 0
        hist = snap["histograms"]["memory.load_latency"]
        assert hist["count"] > 0
        assert snap["gauges"]["run.ipc"] == pytest.approx(result.ipc)


class TestMeasurementReset:
    def test_hierarchy_stats_object_survives_warmup(self):
        """The warmup reset must preserve object identity (components
        cache references to the stats holders)."""
        from repro.config import SimulationConfig
        from repro.harness.runner import Simulation

        sim = Simulation(
            WORKLOAD,
            SimulationConfig(
                max_instructions=5_000, warmup_instructions=2_000
            ),
        )
        before = sim.hierarchy.stats
        core_before = sim.core.stats
        sim.run()
        assert sim.hierarchy.stats is before
        assert sim.core.stats is core_before

    def test_reset_zeroes_load_latency_accumulator(self):
        from repro.memory.stats import MemoryStats

        stats = MemoryStats()
        stats.total_load_latency = 123
        stats.stores = 4
        stats.reset_measurement()
        assert stats.total_load_latency == 0
        assert stats.stores == 0


class TestCLI:
    def test_run_writes_trace_and_metrics(self, tmp_path, capsys):
        from repro.__main__ import main

        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        code = main([
            "run", WORKLOAD,
            "--instructions", "20000", "--warmup", "5000",
            "--sample-interval", "5000",
            "--trace-out", str(trace),
            "--metrics-out", str(metrics),
        ])
        assert code == 0
        payload = json.loads(trace.read_text())
        assert validate_chrome_trace(payload) == []
        snapshot = json.loads(metrics.read_text())
        assert {"metrics", "ring", "timelines", "samples"} <= set(snapshot)

    def test_run_jsonl_suffix_writes_jsonl(self, tmp_path):
        from repro.__main__ import main

        out = tmp_path / "trace.jsonl"
        assert main([
            "run", WORKLOAD, "--instructions", "15000", "--warmup", "0",
            "--trace-out", str(out),
        ]) == 0
        lines = out.read_text().strip().splitlines()
        assert lines
        assert all("kind" in json.loads(line) for line in lines)

    def test_timeline_subcommand(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "timelines.jsonl"
        code = main([
            "timeline", WORKLOAD,
            "--instructions", "40000", "--warmup", "10000",
            "--json-out", str(out),
        ])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "repair" in stdout
        records = [
            json.loads(line)
            for line in out.read_text().strip().splitlines()
        ]
        assert records and all("steps" in r for r in records)

    def test_figure_trace_out_exports_fleet_trace(self, capsys, tmp_path):
        """Non-resilience figures write the stitched *fleet* trace:
        engine + workers on one timeline (resilience keeps its
        instrumented single-run trace)."""
        import json

        from repro.__main__ import main
        from repro.obs.export import validate_chrome_trace

        trace = tmp_path / "fleet.json"
        assert main([
            "figure", "5", "--trace-out", str(trace),
            "--workloads", WORKLOAD, "--instructions", "1000",
            "--warmup", "0",
        ]) == 0
        payload = json.loads(trace.read_text())
        assert validate_chrome_trace(payload) == []
        names = {e["name"] for e in payload["traceEvents"]}
        assert "commit" in names


class TestResilienceObservability:
    def test_resilience_exports_valid_trace(self, tmp_path):
        from repro.harness import experiments

        trace = tmp_path / "resilience.json"
        result = experiments.resilience(
            workloads=[WORKLOAD],
            max_instructions=40_000,
            warmup=5_000,
            chunks=4,
            trace_out=str(trace),
        )
        assert result.rows
        payload = json.loads(trace.read_text())
        assert validate_chrome_trace(payload) == []
        names = {e.get("name") for e in payload["traceEvents"]}
        assert "fault" in names         # the injected phase shift
        assert "windowed IPC" in names  # the recovery counter track
        rendered = result.render()
        assert "recovery curves" in rendered
