"""Tests for the event queue and the helper-thread model."""

import pytest

from repro.trident.events import (
    DelinquentLoadEvent,
    EventQueue,
    HotTraceEvent,
)
from repro.trident.helper_thread import HelperThread, RegistrationStructure


class TestEventQueue:
    def test_fifo_order(self):
        q = EventQueue()
        a = HotTraceEvent(head_pc=1, directions=(True,), cycle=0.0)
        b = DelinquentLoadEvent(load_pc=2, trace_id=1, cycle=1.0)
        q.push(a)
        q.push(b)
        assert q.pop() is a
        assert q.pop() is b
        assert q.pop() is None

    def test_bounded_capacity_drops(self):
        q = EventQueue(capacity=2)
        for i in range(4):
            q.push(DelinquentLoadEvent(load_pc=i, trace_id=1, cycle=0.0))
        assert len(q) == 2
        assert q.stats.dropped == 2
        assert q.stats.enqueued == 2

    def test_kind_counting(self):
        q = EventQueue()
        q.push(HotTraceEvent(head_pc=1, directions=(True,), cycle=0.0))
        q.push(DelinquentLoadEvent(load_pc=2, trace_id=1, cycle=0.0))
        assert q.stats.hot_trace_events == 1
        assert q.stats.delinquent_load_events == 1

    def test_pending_delinquent_pcs(self):
        q = EventQueue()
        q.push(HotTraceEvent(head_pc=1, directions=(True,), cycle=0.0))
        q.push(DelinquentLoadEvent(load_pc=7, trace_id=1, cycle=0.0))
        assert q.pending_delinquent_pcs() == {7}


class TestHelperThread:
    def test_schedule_and_apply(self):
        helper = HelperThread(startup_cycles=2000)
        applied = []
        helper.schedule(100.0, 400.0, lambda: applied.append(1), "repair")
        assert not helper.idle
        assert helper.busy_until == 2500.0
        # Not done yet.
        assert not helper.tick(2000.0)
        assert applied == []
        # Done.
        assert helper.tick(2500.0)
        assert applied == [1]
        assert helper.idle

    def test_double_schedule_rejected(self):
        helper = HelperThread(2000)
        helper.schedule(0.0, 0.0, lambda: None, "form")
        with pytest.raises(RuntimeError):
            helper.schedule(0.0, 0.0, lambda: None, "form")

    def test_busy_accounting(self):
        helper = HelperThread(2000)
        helper.schedule(0.0, 1000.0, lambda: None, "insert")
        helper.tick(10_000.0)
        helper.schedule(10_000.0, 0.0, lambda: None, "repair")
        helper.tick(20_000.0)
        assert helper.total_busy_cycles == 3000.0 + 2000.0
        assert helper.jobs_run == 2
        assert helper.jobs_by_kind == {"insert": 1, "repair": 1}

    def test_active_fraction(self):
        helper = HelperThread(2000)
        helper.schedule(0.0, 0.0, lambda: None, "form")
        helper.tick(10_000.0)
        assert helper.active_fraction(100_000.0) == pytest.approx(0.02)
        assert helper.active_fraction(0.0) == 0.0
        assert helper.active_fraction(100.0) == 1.0  # clamped

    def test_registration_structure_fields(self):
        reg = RegistrationStructure()
        # The paper's structure: entry point, SP, GDP, code-cache pointer,
        # priority (helpers run below the main thread).
        assert hasattr(reg, "helper_entry_point")
        assert hasattr(reg, "stack_pointer")
        assert hasattr(reg, "global_data_pointer")
        assert hasattr(reg, "code_cache_pointer")
        assert reg.priority == 1
