"""The content-addressed result cache: keying, invalidation, corruption
tolerance, atomic concurrent writes, and the sweeps' baseline reuse."""

from __future__ import annotations

import json
import threading

from repro.config import PrefetchPolicy
from repro.faults.plan import FaultPlan
from repro.harness import runner, sweep
from repro.harness.cache import (
    ENV_CODE_VERSION,
    ResultCache,
    stable_hash,
)
from repro.harness.engine import ExperimentEngine, make_job

BUDGET = 2_000
WARMUP = 200


def _job(**overrides):
    kwargs = dict(
        policy=PrefetchPolicy.HW_ONLY,
        max_instructions=BUDGET,
        warmup_instructions=WARMUP,
    )
    kwargs.update(overrides)
    return make_job("art", **kwargs)


def test_stable_hash_is_order_insensitive():
    assert stable_hash({"a": 1, "b": [2, 3]}) == stable_hash(
        {"b": [2, 3], "a": 1}
    )
    assert stable_hash({"a": 1}) != stable_hash({"a": 2})


def test_hit_after_store_miss_before(tmp_path):
    cache = ResultCache(tmp_path)
    key = cache.key_for(_job().spec())
    assert cache.get(key) is None
    assert cache.misses == 1
    assert cache.put(key, _job().spec(), {"ipc": 1.0}, elapsed_s=0.5)
    payload = cache.get(key)
    assert payload is not None
    assert payload["result"] == {"ipc": 1.0}
    assert payload["elapsed_s"] == 0.5
    assert cache.hits == 1


def test_identical_specs_share_a_key(tmp_path):
    cache = ResultCache(tmp_path)
    assert cache.key_for(_job().spec()) == cache.key_for(_job().spec())


def test_spec_changes_invalidate(tmp_path):
    """Any meaningful field of the job spec must change the key."""
    cache = ResultCache(tmp_path)
    base = cache.key_for(_job().spec())
    variants = [
        _job(policy=PrefetchPolicy.SELF_REPAIRING),          # config field
        _job(seed=2),                                        # config field
        _job(max_instructions=BUDGET + 1),                   # budget
        _job(warmup_instructions=WARMUP + 1),                # budget
        _job(sample_interval=500),                           # observation
        _job(fault_plan=FaultPlan.latency_phase_shift(       # fault plan
            at_instruction=1_000, extra_cycles=100, seed=1
        )),
    ]
    keys = [cache.key_for(v.spec()) for v in variants]
    assert base not in keys
    assert len(set(keys)) == len(keys)


def test_code_version_change_invalidates(tmp_path, monkeypatch):
    cache = ResultCache(tmp_path)
    monkeypatch.setenv(ENV_CODE_VERSION, "v1")
    first = cache.key_for(_job().spec())
    monkeypatch.setenv(ENV_CODE_VERSION, "v2")
    second = cache.key_for(_job().spec())
    assert first != second


def test_corrupted_entry_is_a_miss_not_a_crash(tmp_path):
    cache = ResultCache(tmp_path)
    spec = _job().spec()
    key = cache.key_for(spec)
    cache.put(key, spec, {"ipc": 1.0}, elapsed_s=0.1)
    path = cache.path_for(key)
    for garbage in (b"", b"{truncated", b"[1, 2, 3]", b'{"schema": 999}'):
        path.write_bytes(garbage)
        assert cache.get(key) is None
    # The engine re-simulates through the corruption and heals the entry.
    engine = ExperimentEngine(cache=cache)
    outcome = engine.run([_job()])[0]
    assert outcome.ok and not outcome.cached
    assert cache.get(key) is not None


def test_concurrent_writers_never_tear_an_entry(tmp_path):
    cache = ResultCache(tmp_path)
    spec = _job().spec()
    key = cache.key_for(spec)
    payload = {"ipc": 1.0, "filler": "x" * 64_000}
    errors = []

    def hammer():
        try:
            for _ in range(25):
                assert cache.put(key, spec, payload, elapsed_s=0.1)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=hammer) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    # Whatever interleaving happened, the entry parses whole.
    stored = cache.get(key)
    assert stored is not None and stored["result"] == payload
    # No temp files left behind.
    leftovers = [
        p for p in cache.path_for(key).parent.iterdir()
        if ".tmp." in p.name
    ]
    assert leftovers == []


def test_unwritable_root_degrades_to_no_cache(tmp_path):
    target = tmp_path / "blocked"
    target.write_text("a file where the cache root should be")
    cache = ResultCache(target)
    spec = _job().spec()
    key = cache.key_for(spec)
    assert cache.put(key, spec, {"ipc": 1.0}, elapsed_s=0.1) is False
    assert cache.get(key) is None
    outcome = ExperimentEngine(cache=cache).run([_job()])[0]
    assert outcome.ok


def test_sweep_baselines_simulated_once_across_ablations(
    tmp_path, monkeypatch
):
    """The sweeps' shared HW_ONLY baselines used to be re-simulated by
    every ablation; with the engine they are simulated once and replayed
    from the cache by every later ablation."""
    counts = {"runs": 0}
    original_run = runner.Simulation.run

    def counting_run(self):
        counts["runs"] += 1
        return original_run(self)

    monkeypatch.setattr(runner.Simulation, "run", counting_run)
    cache = ResultCache(tmp_path)
    workloads = ["art", "dot"]

    first = ExperimentEngine(cache=cache)
    sweep.ablation_phase_detection(
        workloads, BUDGET, warmup_instructions=WARMUP, engine=first
    )
    # 2 baselines + 2 variants x 2 workloads, all fresh.
    assert counts["runs"] == 6
    # The "off" variant IS the plain SELF_REPAIRING run other sweeps
    # also need — but within one ablation nothing repeats, so all 6 ran.

    counts["runs"] = 0
    second = ExperimentEngine(cache=cache)
    result = sweep.ablation_initial_distance(
        workloads, BUDGET, warmup_instructions=WARMUP, engine=second
    )
    # Baselines and the mode="one"-equivalent runs come from the cache;
    # only the genuinely new variant simulations run.
    assert counts["runs"] < 6
    assert second.stats.jobs_cached >= len(workloads)
    assert set(result.variants) == {
        "start at 1 (paper default)",
        "start at estimate (eq. 2)",
    }


class TestReadPathHardening:
    """Every corrupt-entry variant is a quarantined miss, never an error."""

    def _stored(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _job().spec()
        key = cache.key_for(spec)
        assert cache.put(key, spec, {"ipc": 1.0}, elapsed_s=0.1)
        return cache, key, cache.path_for(key)

    def test_truncated_json_is_quarantined(self, tmp_path):
        cache, key, path = self._stored(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        assert cache.get(key) is None
        assert cache.quarantined == 1
        assert not path.exists()
        assert (cache.quarantine_dir() / path.name).exists()

    def test_bad_checksum_is_quarantined(self, tmp_path):
        cache, key, path = self._stored(tmp_path)
        payload = json.loads(path.read_text())
        payload["result"]["ipc"] = 9.9  # bit rot; sum now stale
        path.write_text(json.dumps(payload))
        assert cache.get(key) is None
        assert cache.quarantined == 1
        assert not path.exists()

    def test_empty_file_is_quarantined(self, tmp_path):
        cache, key, path = self._stored(tmp_path)
        path.write_bytes(b"")
        assert cache.get(key) is None
        assert cache.quarantined == 1

    def test_legacy_entry_without_checksum_still_reads(self, tmp_path):
        """Entries written before the ``sum`` field are verified only by
        shape — a miss would needlessly re-simulate on upgrade."""
        cache, key, path = self._stored(tmp_path)
        payload = json.loads(path.read_text())
        del payload["sum"]
        path.write_text(json.dumps(payload))
        stored = cache.get(key)
        assert stored is not None
        assert cache.quarantined == 0

    def test_quarantined_entry_heals_on_next_run(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = _job()
        key = cache.key_for(job.spec())
        engine = ExperimentEngine(cache=cache)
        engine.run([job])
        path = cache.path_for(key)
        path.write_bytes(b"\x00garbage\x00")
        outcome = ExperimentEngine(cache=cache).run([job])[0]
        assert outcome.ok and not outcome.cached
        assert cache.quarantined == 1
        healed = cache.get(key)
        assert healed is not None


def test_refresh_overwrites_and_no_cache_skips(tmp_path):
    cache = ResultCache(tmp_path)
    job = _job()
    key = cache.key_for(job.spec())
    ExperimentEngine(cache=cache).run([job])
    stamped = json.loads(cache.path_for(key).read_text())
    stamped["result"]["instructions"] = -1
    cache.path_for(key).write_text(json.dumps(stamped))

    refreshed = ExperimentEngine(cache=cache, refresh=True).run([job])[0]
    assert not refreshed.cached
    assert refreshed.result.instructions != -1
    healed = json.loads(cache.path_for(key).read_text())
    assert healed["result"]["instructions"] == refreshed.result.instructions

    uncached_engine = ExperimentEngine(cache=None)
    outcome = uncached_engine.run([job])[0]
    assert outcome.ok and not outcome.cached
    assert uncached_engine.stats.jobs_run == 1
