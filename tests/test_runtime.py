"""Unit tests for the TridentRuntime event plumbing."""

import pytest

from repro.config import MachineConfig, PrefetchPolicy, TridentConfig
from repro.memory.stats import LoadOutcome, OutcomeKind
from repro.trident.runtime import TridentRuntime
from repro.trident.trace_formation import form_trace

from conftest import simple_stride_program


MISS = LoadOutcome(OutcomeKind.MISS, 350, "mem")
HIT = LoadOutcome(OutcomeKind.HIT, 3, "l1")


def make_runtime(policy=PrefetchPolicy.SELF_REPAIRING, **kwargs):
    program = simple_stride_program(iters=10_000)
    return TridentRuntime(
        program=program,
        machine=MachineConfig(),
        trident=TridentConfig(),
        policy=policy,
        **kwargs,
    )


def link_a_trace(runtime):
    """Manually form and link the stride loop's trace (head pc 2)."""
    trace = form_trace(runtime.program, 2, [True], runtime.trident)
    runtime.code_cache.link(trace)
    runtime.watch_table.register(trace.trace_id, trace.head_pc, len(trace))
    runtime.trace_load_pcs.update(trace.load_pcs())
    return trace


class TestEventFlow:
    def test_hot_branches_eventually_form_trace(self):
        runtime = make_runtime()
        for i in range(40):
            runtime.on_branch(6, True, 2, cycle=float(i))
            runtime.tick(float(i))
        # Drive time forward so the helper job applies.
        runtime.tick(1e9)
        assert runtime.traces_linked == 1
        assert runtime.trace_at(2) is not None

    def test_overhead_only_never_exposes_traces(self):
        runtime = make_runtime(overhead_only=True)
        for i in range(40):
            runtime.on_branch(6, True, 2, cycle=float(i))
            runtime.tick(float(i))
        runtime.tick(1e9)
        assert runtime.traces_linked == 1
        assert runtime.trace_at(2) is None

    def test_delinquent_event_inserts_prefetch(self):
        runtime = make_runtime()
        trace = link_a_trace(runtime)
        load_pc = trace.load_pcs()[0]
        addr = 0x100000
        cycle = 0.0
        for i in range(6000):
            runtime.on_trace_load(load_pc, trace, addr, MISS, cycle)
            runtime.on_trace_execution(trace, 10.0, True, cycle)
            addr += 64
            cycle += 50.0
            runtime.tick(cycle)
        runtime.tick(cycle + 1e7)
        new_trace = runtime.trace_at(2)
        assert new_trace is not None
        assert new_trace.trace_id != trace.trace_id
        assert new_trace.prefetch_instructions()
        assert load_pc in runtime.prefetch_targeted_pcs()

    def test_hits_never_fire_events(self):
        runtime = make_runtime()
        trace = link_a_trace(runtime)
        load_pc = trace.load_pcs()[0]
        for i in range(3000):
            runtime.on_trace_load(
                load_pc, trace, 0x100000 + 64 * i, HIT, float(i)
            )
            runtime.tick(float(i))
        assert runtime.dlt.events_fired == 0

    def test_policy_without_sw_prefetch_ignores_dlt(self):
        runtime = make_runtime(policy=PrefetchPolicy.SELF_REPAIRING)
        runtime.policy = PrefetchPolicy.HW_ONLY  # simulate gating
        trace = link_a_trace(runtime)
        load_pc = trace.load_pcs()[0]
        for i in range(1000):
            runtime.on_trace_load(
                load_pc, trace, 0x100000 + 64 * i, MISS, float(i)
            )
        assert runtime.dlt.events_fired == 0

    def test_optimizing_flag_suppresses_reentry(self):
        runtime = make_runtime()
        trace = link_a_trace(runtime)
        runtime.watch_table.set_optimizing(trace.trace_id, True)
        load_pc = trace.load_pcs()[0]
        addr = 0x100000
        for i in range(600):
            runtime.on_trace_load(load_pc, trace, addr, MISS, float(i))
            addr += 64
        # Events fired in the DLT but none were queued.
        assert runtime.dlt.events_fired >= 1
        assert len(runtime.events) == 0

    def test_trace_only_policy_matures_without_insertion(self):
        runtime = make_runtime(policy=PrefetchPolicy.TRACE_ONLY)
        trace = link_a_trace(runtime)
        load_pc = trace.load_pcs()[0]
        addr, cycle = 0x100000, 0.0
        for i in range(2000):
            runtime.on_trace_load(load_pc, trace, addr, MISS, cycle)
            addr += 64
            cycle += 50.0
            runtime.tick(cycle)
        runtime.tick(cycle + 1e7)
        current = runtime.trace_at(2)
        assert current is trace  # never regenerated
        assert not trace.prefetch_instructions()
        entry = runtime.dlt.lookup(load_pc)
        assert entry.mature

    def test_stale_event_for_replaced_trace_dropped(self):
        from repro.trident.events import DelinquentLoadEvent

        runtime = make_runtime()
        trace = link_a_trace(runtime)
        runtime.events.push(
            DelinquentLoadEvent(load_pc=99, trace_id=12345, cycle=0.0)
        )
        runtime.tick(0.0)  # dispatch: unknown trace id
        assert runtime.helper.idle
