"""Tests for the experiment harness (small budgets — shape only)."""

import pytest

from repro.config import PrefetchPolicy
from repro.harness.experiments import (
    bench_instructions,
    bench_warmup,
    bench_workloads,
    fig2_hw_baseline,
    fig5_policies,
    fig6_breakdown,
)
from repro.harness.runner import run_simulation

BUDGET = 15_000
WORKLOADS = ["swim"]


class TestEnvironmentKnobs:
    def test_instruction_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_INSTRUCTIONS", "777")
        assert bench_instructions() == 777

    def test_warmup_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_WARMUP", "888")
        assert bench_warmup() == 888

    def test_workload_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_WORKLOADS", "mcf, art")
        assert bench_workloads() == ["mcf", "art"]

    def test_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_WORKLOADS", raising=False)
        assert len(bench_workloads()) == 14


class TestExperimentShapes:
    def test_fig2_rows_and_render(self):
        result = fig2_hw_baseline(
            workloads=WORKLOADS, max_instructions=BUDGET, warmup=0
        )
        assert len(result.rows) == 1
        text = result.render()
        assert "swim" in text and "average" in text
        assert result.mean_speedup_8x8 > 0

    def test_fig5_rows_and_render(self):
        result = fig5_policies(
            workloads=WORKLOADS, max_instructions=BUDGET, warmup=0
        )
        row = result.rows[0]
        assert set(row) == {
            "workload", "basic", "whole_object", "self_repairing",
        }
        assert "self-repairing" in result.render()

    def test_fig6_fractions_sum_to_one(self):
        result = fig6_breakdown(
            workloads=WORKLOADS, max_instructions=BUDGET, warmup=0
        )
        row = result.rows[0]
        total = sum(v for k, v in row.items() if k != "workload")
        assert total == pytest.approx(1.0, abs=1e-6)


class TestRunnerResults:
    def test_speedup_over_self_is_one(self):
        a = run_simulation(
            "swim", policy=PrefetchPolicy.NONE, max_instructions=BUDGET
        )
        assert a.speedup_over(a) == pytest.approx(1.0)

    def test_warmup_excluded_from_interval(self):
        warm = run_simulation(
            "swim",
            policy=PrefetchPolicy.NONE,
            max_instructions=BUDGET,
            warmup_instructions=5_000,
        )
        assert warm.instructions == BUDGET

    def test_determinism(self):
        a = run_simulation(
            "swim", policy=PrefetchPolicy.SELF_REPAIRING,
            max_instructions=BUDGET,
        )
        b = run_simulation(
            "swim", policy=PrefetchPolicy.SELF_REPAIRING,
            max_instructions=BUDGET,
        )
        assert a.ipc == b.ipc
        assert a.breakdown() == b.breakdown()

    def test_miss_profile_keys_are_pcs(self):
        result = run_simulation(
            "swim", policy=PrefetchPolicy.NONE, max_instructions=BUDGET
        )
        profile = result.miss_profile()
        assert profile
        program_len = 30  # swim program is small
        assert all(isinstance(pc, int) for pc in profile)
