"""Property-based differential fuzzing of the decoded fast interpreter.

Hypothesis generates random straight-line programs — every batchable
opcode class the fast path compiles into single-closure blocks (integer
and FP ALU, loads, non-faulting loads, stores, prefetches, LDA, MOVE,
NOP) in arbitrary order with arbitrary register/displacement choices —
and asserts the reference stepper and the fast path agree on *all*
architecturally visible state: registers, memory words, cycles, core
stats, and the memory hierarchy's outcome counters.

Straight-line code is exactly the shape the batch compiler fuses, so
this hammers the riskiest transformation (loop-carried scalar pipeline
state, deferred ``stats.committed``) harder than the fixed workloads
can.  A second property re-runs each program under a random instruction
budget, forcing the mid-block clamp fallback.
"""

from __future__ import annotations

import dataclasses

from hypothesis import given, settings, strategies as st

from repro.config import MachineConfig
from repro.cpu.core import SMTCore
from repro.isa.assembler import Assembler
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.mainmem import DataMemory

REGS = [f"r{i}" for i in range(1, 9)]
ADDR_REG = "r9"  # always holds BASE: loads/stores stay in a mapped region
BASE = 0x10000

_regs = st.sampled_from(REGS)
# Word-aligned displacements spanning a few cache lines, so generated
# loads mix L1 hits, misses, and stream-buffer-adjacent patterns.
_disps = st.integers(min_value=0, max_value=64).map(lambda n: n * 8)
# Shifts take the immediate form with a small count so register values
# stay bounded no matter how the program chains them.
_shift_imms = st.integers(min_value=0, max_value=8)
_imms = st.integers(min_value=0, max_value=255)

_instructions = st.one_of(
    st.tuples(
        st.just("alu"),
        st.sampled_from(
            ["addq", "subq", "mulq", "and_", "or_", "xor",
             "addf", "subf", "mulf"]
        ),
        _regs, _regs, st.one_of(_regs, _imms),
    ),
    st.tuples(st.just("shift"), st.sampled_from(["sll", "srl"]),
              _regs, _regs, _shift_imms),
    st.tuples(st.just("cmp"), st.sampled_from(["cmpeq", "cmplt", "cmple"]),
              _regs, _regs, st.one_of(_regs, _imms)),
    st.tuples(st.just("ldq"), _regs, _disps),
    st.tuples(st.just("ldq_nf"), _regs, _disps),
    st.tuples(st.just("stq"), _regs, _disps),
    st.tuples(st.just("prefetch"), _disps),
    st.tuples(st.just("lda"), _regs, _disps),
    st.tuples(st.just("move"), _regs, _regs),
    st.tuples(st.just("nop"),),
)

programs = st.lists(_instructions, min_size=0, max_size=48)


def _build(ops):
    asm = Assembler("prop")
    asm.li(ADDR_REG, BASE)
    for i, reg in enumerate(REGS):
        asm.li(reg, (i * 37 + 11) % 251)
    for op in ops:
        kind = op[0]
        if kind in ("alu", "cmp"):
            _, name, rd, ra, b = op
            if isinstance(b, str):
                getattr(asm, name)(rd, ra, rb=b)
            else:
                getattr(asm, name)(rd, ra, imm=b)
        elif kind == "shift":
            _, name, rd, ra, imm = op
            getattr(asm, name)(rd, ra, imm=imm)
        elif kind == "ldq":
            asm.ldq(op[1], ADDR_REG, op[2])
        elif kind == "ldq_nf":
            asm.ldq_nf(op[1], ADDR_REG, op[2])
        elif kind == "stq":
            asm.stq(op[1], ADDR_REG, op[2])
        elif kind == "prefetch":
            asm.prefetch(ADDR_REG, op[1])
        elif kind == "lda":
            asm.lda(op[1], ADDR_REG, op[2])
        elif kind == "move":
            asm.move(op[1], op[2])
        else:
            asm.nop()
    asm.halt()
    return asm.build()


def _snapshot(core, memory, hierarchy):
    return {
        "regs": list(core.ctx.regs),
        "pc": core.ctx.pc,
        "halted": core.ctx.halted,
        "cycles": core.cycles,
        "stats": dataclasses.asdict(core.stats),
        "mem": dict(memory._words),
        "unmapped_reads": memory.unmapped_reads,
        "mem_stats": dataclasses.asdict(hierarchy.stats),
    }


def _run(program, fast, budget=10_000):
    config = MachineConfig()
    memory = DataMemory()
    hierarchy = MemoryHierarchy(config)
    core = SMTCore(program, memory, hierarchy, config, fast=fast)
    core.run(budget)
    return _snapshot(core, memory, hierarchy)


@settings(max_examples=60, deadline=None)
@given(ops=programs)
def test_random_straight_line_identical(ops):
    program = _build(ops)
    assert _run(program, fast=True) == _run(program, fast=False)


@settings(max_examples=60, deadline=None)
@given(ops=programs, budget=st.integers(min_value=1, max_value=40))
def test_random_budget_truncation_identical(ops, budget):
    """A budget landing mid-block must clamp to the per-instruction
    fallback and still match the reference stepper exactly."""
    program = _build(ops)
    assert _run(program, fast=True, budget=budget) == _run(
        program, fast=False, budget=budget
    )
