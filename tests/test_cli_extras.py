"""Tests for the traces/compare CLI subcommands and JSON output."""

import json

import pytest

from repro.__main__ import main


class TestTracesCommand:
    def test_dumps_linked_traces(self, capsys):
        code = main(["traces", "swim", "--instructions", "15000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "trace" in out
        assert "ldq" in out
        assert "expect T" in out

    def test_shows_prefetches_and_records(self, capsys):
        main(["traces", "swim", "--instructions", "30000"])
        out = capsys.readouterr().out
        assert "prefetch" in out
        assert "record loads=" in out
        # Synthetic instructions are marked.
        assert "\n  + [" in out

    def test_policy_without_runtime(self, capsys):
        code = main(
            ["traces", "swim", "--policy", "hw_only",
             "--instructions", "3000"]
        )
        assert code == 0
        assert "no Trident runtime" in capsys.readouterr().out


class TestCompareCommand:
    def test_side_by_side(self, capsys):
        code = main(
            [
                "compare", "swim",
                "--instructions", "8000", "--warmup", "4000",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "hw_only" in out
        assert "self_repairing" in out
        assert "speedup:" in out


class TestJsonOutput:
    def test_json_is_valid_and_complete(self, capsys):
        main(
            ["run", "swim", "--instructions", "5000", "--warmup", "0",
             "--json"]
        )
        data = json.loads(capsys.readouterr().out)
        for key in (
            "workload", "policy", "ipc", "breakdown",
            "prefetches_inserted", "repairs_applied",
        ):
            assert key in data
        assert data["workload"] == "swim"
        assert sum(data["breakdown"].values()) == pytest.approx(1.0)
