"""Tests for the code cache (trace storage and patch map)."""

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.trident.code_cache import CodeCache
from repro.trident.trace import HotTrace, TraceInstruction, next_trace_id


def make_trace(head_pc=10):
    body = [
        TraceInstruction(
            inst=Instruction(Opcode.ADDQ, rd=1, ra=1, imm=1), orig_pc=head_pc
        )
    ]
    return HotTrace(
        trace_id=next_trace_id(),
        head_pc=head_pc,
        body=body,
        fallthrough_pc=head_pc,
    )


class TestCodeCache:
    def test_link_and_lookup(self):
        cc = CodeCache()
        trace = make_trace()
        assert cc.link(trace) is None
        assert cc.lookup(10) is trace
        assert cc.lookup(11) is None
        assert cc.trace_by_id(trace.trace_id) is trace
        assert cc.links == 1

    def test_relink_replaces_and_unregisters_old(self):
        cc = CodeCache()
        old = make_trace()
        new = old.derive(list(old.body))
        cc.link(old)
        previous = cc.link(new)
        assert previous is old
        assert cc.lookup(10) is new
        assert cc.trace_by_id(old.trace_id) is None
        assert cc.relinks == 1

    def test_unlink(self):
        cc = CodeCache()
        trace = make_trace()
        cc.link(trace)
        cc.unlink(trace)
        assert cc.lookup(10) is None
        assert cc.unlinks == 1

    def test_unlink_of_stale_trace_is_noop_for_patch(self):
        cc = CodeCache()
        old = make_trace()
        new = old.derive(list(old.body))
        cc.link(old)
        cc.link(new)
        cc.unlink(old)  # stale: must not remove the new patch
        assert cc.lookup(10) is new

    def test_linked_traces_listing(self):
        cc = CodeCache()
        a, b = make_trace(10), make_trace(20)
        cc.link(a)
        cc.link(b)
        assert set(cc.linked_traces()) == {a, b}
        assert len(cc) == 2
