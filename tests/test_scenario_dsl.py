"""Scenario DSL: validation, serialisation, compilation, job identity.

The DSL is the repo's first externally-fed workload source, so its
contracts are load-bearing: a spec must reject bad input with
:class:`ConfigError` at the surface (never an assert deep in the
assembler), round-trip its serialised form exactly, compile
deterministically, and produce stable engine job identity (cache key /
journal key) — otherwise the result cache could serve a stale result
for an edited scenario or recompute an unchanged one.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.harness.engine import SimJob, make_job
from repro.harness.journal import job_key
from repro.scenarios import (
    CATALOG,
    Phase,
    Primitive,
    ScenarioSpec,
    generate_scenario,
    materialize_workload,
    resolve_job_source,
)
from repro.workloads.registry import BENCHMARK_NAMES

# ---------------------------------------------------------------------------
# Validation.
# ---------------------------------------------------------------------------


def _stride(iters=16, **kw):
    return Primitive("stride", {"iters": iters, **kw})


class TestValidation:
    def test_unknown_primitive_kind(self):
        with pytest.raises(ConfigError, match="unknown scenario primitive"):
            Primitive("teleport", {})

    def test_unknown_parameter(self):
        with pytest.raises(ConfigError, match="unknown parameter"):
            Primitive("stride", {"itres": 16})

    def test_out_of_range_parameter(self):
        with pytest.raises(ConfigError, match="out of range"):
            Primitive("stride", {"iters": 0})
        with pytest.raises(ConfigError, match="out of range"):
            Primitive("stride", {"stride": 1000})

    def test_bool_is_not_an_int(self):
        with pytest.raises(ConfigError, match="must be an int"):
            Primitive("stride", {"iters": True})

    def test_enum_parameter(self):
        with pytest.raises(ConfigError, match="must be one of"):
            Primitive("pointer_chase", {"layout": "spiral"})

    def test_hash_walk_table_power_of_two(self):
        with pytest.raises(ConfigError, match="power of two"):
            Primitive("hash_walk", {"table_words": 3000})

    def test_defaults_fill_in(self):
        prim = Primitive("stride", {})
        assert prim.params["iters"] == 256
        assert prim.params["stride"] == 8

    def test_phase_needs_primitives(self):
        with pytest.raises(ConfigError, match="at least one primitive"):
            Phase([])

    def test_spec_needs_phases(self):
        with pytest.raises(ConfigError, match="at least one phase"):
            ScenarioSpec(name="empty", phases=[])

    def test_bad_names_rejected(self):
        for bad in ("", "Has-Caps", "0starts-digit", "a b", "x" * 80,
                    "colon:name"):
            with pytest.raises(ConfigError, match="invalid"):
                ScenarioSpec(
                    name=bad, phases=[Phase([_stride()])]
                )

    @pytest.mark.parametrize("taken", BENCHMARK_NAMES[:3] + ["mcf"])
    def test_builtin_name_collision_rejected(self, taken):
        """A scenario may never shadow a registry benchmark: the name is
        the figure row / cache group identity."""
        with pytest.raises(ConfigError, match="collides with a built-in"):
            ScenarioSpec(name=taken, phases=[Phase([_stride()])])

    def test_from_dict_rejects_unknown_keys(self):
        raw = CATALOG["stride-flip"].to_dict()
        raw["surprise"] = 1
        with pytest.raises(ConfigError, match="unknown key"):
            ScenarioSpec.from_dict(raw)

    def test_from_dict_rejects_future_version(self):
        raw = CATALOG["stride-flip"].to_dict()
        raw["version"] = 99
        with pytest.raises(ConfigError, match="version"):
            ScenarioSpec.from_dict(raw)

    def test_load_rejects_bad_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ConfigError, match="not valid JSON"):
            ScenarioSpec.load(path)

    def test_load_rejects_missing_file(self, tmp_path):
        with pytest.raises(ConfigError, match="cannot read"):
            ScenarioSpec.load(tmp_path / "absent.json")


# ---------------------------------------------------------------------------
# Serialisation and compilation.
# ---------------------------------------------------------------------------


class TestCatalog:
    @pytest.mark.parametrize("name", sorted(CATALOG))
    def test_round_trip(self, name):
        spec = CATALOG[name]
        raw = spec.to_dict()
        again = ScenarioSpec.from_dict(json.loads(json.dumps(raw)))
        assert again.to_dict() == raw

    @pytest.mark.parametrize("name", sorted(CATALOG))
    def test_builds_deterministically(self, name):
        a = CATALOG[name].build(seed=1)
        b = CATALOG[name].build(seed=1)
        assert a.program.instructions == b.program.instructions
        assert a.memory._words == b.memory._words
        assert a.kind == "scenario"

    def test_save_load(self, tmp_path):
        spec = CATALOG["hash-churn"]
        path = tmp_path / "spec.json"
        spec.save(path)
        assert ScenarioSpec.load(path).to_dict() == spec.to_dict()


class TestResolution:
    def test_catalog_reference(self):
        name, scenario, trace = resolve_job_source("scenario:ramp-chase")
        assert name == "ramp-chase"
        assert scenario == CATALOG["ramp-chase"].to_dict()
        assert trace is None

    def test_file_reference(self, tmp_path):
        path = tmp_path / "mine.json"
        generate_scenario(5, name="mine").save(path)
        name, scenario, trace = resolve_job_source(f"scenario:{path}")
        assert name == "mine"
        assert trace is None

    def test_unknown_scenario(self):
        with pytest.raises(ConfigError, match="unknown scenario"):
            resolve_job_source("scenario:no-such-thing")

    def test_builtin_passthrough(self):
        assert resolve_job_source("mcf") == ("mcf", None, None)

    def test_spec_object(self):
        spec = CATALOG["object-walk"]
        assert resolve_job_source(spec) == (
            spec.name, spec.to_dict(), None
        )

    def test_materialize_requires_exactly_one_source(self):
        with pytest.raises(ConfigError, match="exactly one"):
            materialize_workload(None, None)


# ---------------------------------------------------------------------------
# Engine identity: the satellite property test.
# ---------------------------------------------------------------------------

_seeds = st.integers(min_value=0, max_value=2**32 - 1)


class TestJobIdentity:
    @given(seed=_seeds)
    @settings(max_examples=60, deadline=None)
    def test_generated_scenarios_round_trip(self, seed):
        """Every generated scenario round-trips to_dict/from_dict byte-
        exactly (including through a JSON encode/decode cycle)."""
        spec = generate_scenario(seed)
        raw = spec.to_dict()
        again = ScenarioSpec.from_dict(json.loads(json.dumps(raw)))
        assert again.to_dict() == raw
        assert again.canonical_json() == spec.canonical_json()

    @given(seed=_seeds)
    @settings(max_examples=60, deadline=None)
    def test_generated_scenarios_have_stable_job_key(self, seed):
        """make_job on a spec and on its serialised twin produce the
        same cache/journal identity, and builtin jobs' spec layout is
        untouched (no scenario/trace keys)."""
        spec = generate_scenario(seed)
        job = make_job(spec, max_instructions=2_000)
        twin = make_job(
            ScenarioSpec.from_dict(spec.to_dict()), max_instructions=2_000
        )
        assert job.spec() == twin.spec()
        assert job_key(job.spec()) == job_key(twin.spec())
        # and through the journal's to_dict/from_dict rebuild:
        rebuilt = SimJob.from_dict(job.to_dict())
        assert job_key(rebuilt.spec()) == job_key(job.spec())
        assert rebuilt.scenario == job.scenario

    @given(seed=_seeds)
    @settings(max_examples=30, deadline=None)
    def test_generation_is_deterministic(self, seed):
        assert (
            generate_scenario(seed).to_dict()
            == generate_scenario(seed).to_dict()
        )

    def test_builtin_spec_layout_unchanged(self):
        """Adding the scenario/trace fields must not move any existing
        journal or cache key: builtin specs carry no new keys."""
        spec = make_job("mcf", max_instructions=2_000).spec()
        assert "scenario" not in spec
        assert "trace" not in spec

    def test_distinct_specs_distinct_keys(self):
        a = make_job(CATALOG["stride-flip"], max_instructions=2_000)
        b = make_job(CATALOG["hash-churn"], max_instructions=2_000)
        assert job_key(a.spec()) != job_key(b.spec())

    def test_group_carries_the_reference(self):
        job = make_job("scenario:stride-flip", max_instructions=2_000)
        assert job.workload == "stride-flip"
        assert job.group == "scenario:stride-flip"
        assert job.source == "scenario"
