"""Self-repairing pipeline smoke across all 14 workloads.

Each benchmark runs long enough for trace formation and (where its design
allows) prefetch insertion; the assertions check the pipeline stage each
workload is *designed* to reach.
"""

import pytest

from repro.config import PrefetchPolicy
from repro.harness.runner import run_simulation
from repro.workloads.registry import BENCHMARK_NAMES

#: Workloads whose delinquent loads are stride-classifiable: insertion
#: must produce stride prefetches.
STRIDE_INSERTING = [
    "applu", "art", "facerec", "fma3d", "galgel", "gap", "mcf", "mgrid",
    "swim", "vis", "wupwise",
]

#: Workloads whose chains are scrambled: pointer prefetches instead.
POINTER_INSERTING = ["dot", "parser"]


#: applu/facerec iterate ~300-instruction bodies, so one DLT monitoring
#: window (256 accesses per load) spans ~80k instructions — they need a
#: longer run before the first delinquent-load event can fire.
BUDGETS = {"applu": 180_000, "facerec": 180_000}


@pytest.fixture(scope="module")
def results():
    out = {}
    for name in BENCHMARK_NAMES:
        out[name] = run_simulation(
            name,
            policy=PrefetchPolicy.SELF_REPAIRING,
            max_instructions=BUDGETS.get(name, 60_000),
        )
    return out


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_traces_link(results, name):
    assert results[name].traces_linked >= 1


@pytest.mark.parametrize("name", STRIDE_INSERTING)
def test_stride_prefetches_inserted(results, name):
    assert results[name].prefetches_inserted >= 1, name


@pytest.mark.parametrize("name", POINTER_INSERTING)
def test_pointer_prefetches_inserted(results, name):
    result = results[name]
    assert (
        result.pointer_prefetches_inserted >= 1
        or result.loads_matured >= 1
    ), name


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_synthetic_instructions_never_counted(results, name):
    assert results[name].instructions == BUDGETS.get(name, 60_000)


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_breakdown_sums_to_one(results, name):
    total = sum(results[name].breakdown().values())
    assert total == pytest.approx(1.0, abs=1e-9)
