"""The chaos harness: plan parsing, schedule determinism, and the
headline guarantee — a chaos-disturbed figure run produces byte-identical
output, with completed work recovered rather than recomputed."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.faults.chaos import (
    ChaosDecision,
    ChaosPlan,
    ChaosSchedule,
)
from repro.harness import experiments
from repro.harness.cache import ResultCache
from repro.harness.engine import ExperimentEngine, make_job
from repro.harness.journal import JobJournal, job_key

BUDGET = 2_000
WARMUP = 200
WORKLOADS = ["art", "dot"]


def _engine(tmp_path, name, **kwargs) -> ExperimentEngine:
    return ExperimentEngine(
        cache=ResultCache(tmp_path / name), **kwargs
    )


class TestPlan:
    def test_parse_tokens(self):
        plan = ChaosPlan.parse(
            ["seed=9", "kill-rate=0.5", "hang-rate=0.1", "hang-s=2",
             "max-kills=1", "torn-journal=2", "corrupt-cache-rate=0.3"]
        )
        assert plan.seed == 9
        assert plan.kill_rate == 0.5
        assert plan.hang_rate == 0.1
        assert plan.hang_s == 2.0
        assert plan.max_kills_per_job == 1
        assert plan.torn_journal == 2
        assert plan.corrupt_cache_rate == 0.3

    def test_parse_splits_commas(self):
        plan = ChaosPlan.parse(["seed=3,kill-rate=0.2"])
        assert (plan.seed, plan.kill_rate) == (3, 0.2)

    def test_parse_rejects_unknown_and_malformed(self):
        with pytest.raises(ConfigError, match="unknown chaos option"):
            ChaosPlan.parse(["frobnicate=1"])
        with pytest.raises(ConfigError, match="not key=value"):
            ChaosPlan.parse(["seed"])
        with pytest.raises(ConfigError, match="is not a"):
            ChaosPlan.parse(["kill-rate=lots"])

    def test_validation(self):
        with pytest.raises(ConfigError, match="probability"):
            ChaosPlan(kill_rate=1.5)
        with pytest.raises(ConfigError, match="max_kills_per_job"):
            ChaosPlan(max_kills_per_job=0)

    def test_decisions_are_deterministic(self):
        a = ChaosPlan(seed=7, kill_rate=0.5, hang_rate=0.2)
        b = ChaosPlan(seed=7, kill_rate=0.5, hang_rate=0.2)
        for key in ("k1", "k2", "k3"):
            for attempt in range(3):
                assert a.decision(key, attempt) == b.decision(key, attempt)
        assert any(
            not a.decision(f"key{i}", 0).clean for i in range(32)
        )

    def test_max_kills_caps_disturbance(self):
        plan = ChaosPlan(seed=7, kill_rate=1.0, max_kills_per_job=2)
        assert not plan.decision("k", 0).clean
        assert not plan.decision("k", 1).clean
        assert plan.decision("k", 2).clean  # convergence guaranteed

    def test_schedule_forces_at_least_one_kill(self):
        # A seed whose draws all come up clean at rate 0.01 across two
        # keys: the smallest key must still die once.
        plan = ChaosPlan(seed=1, kill_rate=0.01)
        keys = ["aaa", "zzz"]
        schedule = plan.schedule(keys)
        decisions = [schedule.decision(k, 0) for k in sorted(keys)]
        assert any(d.kill_phase is not None for d in decisions)


class TestChaosEquivalence:
    """CI's chaos-smoke contract, as a test: same tables, disturbed run."""

    def _figure(self, engine):
        return experiments.fig5_policies(
            workloads=WORKLOADS, max_instructions=BUDGET,
            warmup=WARMUP, engine=engine,
        ).render()

    def test_killed_workers_do_not_change_the_figure(self, tmp_path):
        clean = self._figure(_engine(tmp_path, "clean"))
        journal = JobJournal(tmp_path / "journal", fsync=False)
        chaotic_engine = _engine(
            tmp_path, "chaos", workers=2, journal=journal,
            chaos=ChaosPlan(seed=7, kill_rate=0.2),
        )
        chaotic = self._figure(chaotic_engine)
        assert chaotic == clean
        stats = chaotic_engine.stats
        assert stats.leases_reclaimed >= 1  # the forced-kill guarantee
        assert stats.jobs_failed == 0
        assert chaotic_engine.chaos.kills_injected >= 1
        # Every journalled job reached a terminal state.
        state = journal.recover()
        assert state.jobs and state.unfinished() == []

    def test_post_kill_work_is_recovered_not_recomputed(self, tmp_path):
        """A worker killed after computing but before reporting: the
        retry must resume the stored end-of-run checkpoint — visible as
        jobs_resumed in the engine stats — not pay for the run again."""
        job = make_job(
            "art", max_instructions=BUDGET, warmup_instructions=WARMUP
        )
        key = job_key(job.spec())
        plan = ChaosPlan(seed=7)  # rates 0: only the forced kill below
        engine = _engine(tmp_path, "post", chaos=plan)
        engine.chaos = ChaosSchedule(
            plan=plan,
            _forced={(key, 0): ChaosDecision(kill_phase="post")},
        )
        outcome = engine.run([job])[0]
        assert outcome.ok
        assert engine.stats.leases_reclaimed == 1
        assert engine.stats.jobs_retried == 1
        assert engine.stats.jobs_resumed == 1
        assert outcome.resumed_from == job.total_budget()

    def test_torn_journal_recovers_everything_else(self, tmp_path):
        journal = JobJournal(tmp_path / "journal", fsync=False)
        engine = _engine(
            tmp_path, "torn", journal=journal,
            chaos=ChaosPlan(seed=7, torn_journal=1, kill_rate=0.2),
        )
        clean = self._figure(_engine(tmp_path, "clean"))
        assert self._figure(engine) == clean
        assert engine.chaos.journal_tears == 1
        state = JobJournal(tmp_path / "journal", fsync=False).recover()
        assert state.skipped >= 1  # the torn line failed its checksum
        # A torn 'start' is superseded by its job's terminal record.
        assert state.unfinished() == []

    def test_corrupted_cache_entries_quarantine_and_resimulate(
        self, tmp_path
    ):
        cache = ResultCache(tmp_path / "cache")
        plan = ChaosPlan(seed=7, corrupt_cache_rate=1.0)
        first = ExperimentEngine(cache=cache, chaos=plan)
        jobs = [
            make_job(
                w, max_instructions=BUDGET, warmup_instructions=WARMUP
            )
            for w in WORKLOADS
        ]
        outcomes = first.run(jobs)
        assert all(o.ok for o in outcomes)
        assert first.chaos.cache_corruptions == len(jobs)

        # A warm pass over the vandalised cache: every entry fails its
        # checksum, is quarantined, and the jobs re-simulate to the
        # identical result.
        second = ExperimentEngine(cache=cache)
        warm = second.run(jobs)
        assert all(o.ok and not o.cached for o in warm)
        assert cache.quarantined == len(jobs)
        quarantine = list((tmp_path / "cache" / "quarantine").iterdir())
        assert len(quarantine) == len(jobs)
        for fresh, re_run in zip(outcomes, warm):
            assert fresh.result.to_dict() == re_run.result.to_dict()

    def test_chaos_requires_a_plan(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="chaos must be a ChaosPlan"):
            ExperimentEngine(chaos="kill-rate=1")

    def test_summary_shape(self):
        schedule = ChaosPlan(seed=7).schedule([])
        assert schedule.summary() == (
            "chaos: kills=0 hangs=0 cache_corruptions=0 journal_tears=0"
        )
