"""Tests for the report helpers and memory statistics aggregation."""

import pytest

from repro.harness.report import (
    arithmetic_mean,
    geometric_mean,
    percent,
    render_mapping,
    render_table,
    speedup_percent,
)
from repro.memory.stats import (
    LoadOutcome,
    MemoryStats,
    OutcomeKind,
    PrefetchSource,
)


class TestFormatting:
    def test_percent(self):
        assert percent(0.231) == "23.1%"
        assert percent(0.5, 0) == "50%"

    def test_speedup_percent(self):
        assert speedup_percent(1.231) == "+23.1%"
        assert speedup_percent(0.9) == "-10.0%"
        assert speedup_percent(1.0) == "+0.0%"

    def test_means(self):
        assert arithmetic_mean([1.0, 2.0, 3.0]) == 2.0
        assert arithmetic_mean([]) == 0.0
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([0.0, -1.0]) == 0.0  # non-positive dropped

    def test_render_table_alignment(self):
        text = render_table(
            ["name", "value"],
            [("a", 1.5), ("long_name", 22.125)],
            title="T",
            precision=2,
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[2]
        assert "1.50" in text and "22.12" in text
        # All data rows align to the same width.
        widths = {len(line) for line in lines[2:]}
        assert len(widths) == 1

    def test_render_mapping(self):
        text = render_mapping("Config", {"alpha": 1, "beta": 2.5})
        assert "alpha" in text and "2.500" in text


class TestMemoryStats:
    def test_record_and_fractions(self):
        stats = MemoryStats()
        stats.record(LoadOutcome(OutcomeKind.HIT, 3, "l1"))
        stats.record(LoadOutcome(OutcomeKind.MISS, 350, "mem"))
        stats.record(
            LoadOutcome(
                OutcomeKind.HIT_PREFETCHED, 3, "l1", PrefetchSource.SOFTWARE
            )
        )
        assert stats.total_loads == 3
        assert stats.total_misses == 1
        assert stats.fraction(OutcomeKind.HIT) == pytest.approx(1 / 3)
        breakdown = stats.breakdown()
        assert breakdown["hit_prefetched"] == pytest.approx(1 / 3)
        assert sum(breakdown.values()) == pytest.approx(1.0)

    def test_prefetched_hits_attributed_by_source(self):
        stats = MemoryStats()
        stats.record(
            LoadOutcome(
                OutcomeKind.PARTIAL_HIT, 100, "inflight",
                PrefetchSource.STREAM_BUFFER,
            )
        )
        assert (
            stats.prefetched_hits_by_source[PrefetchSource.STREAM_BUFFER]
            == 1
        )
        assert stats.prefetched_hits_by_source[PrefetchSource.SOFTWARE] == 0

    def test_outcome_miss_semantics(self):
        assert LoadOutcome(OutcomeKind.PARTIAL_HIT, 90, "inflight").is_miss
        assert LoadOutcome(OutcomeKind.MISS, 350, "mem").is_miss
        assert LoadOutcome(
            OutcomeKind.MISS_DUE_TO_PREFETCH, 350, "mem"
        ).is_miss
        assert not LoadOutcome(OutcomeKind.HIT, 3, "l1").is_miss
        assert not LoadOutcome(OutcomeKind.HIT_PREFETCHED, 3, "l1").is_miss

    def test_miss_latency_zero_for_hits(self):
        assert LoadOutcome(OutcomeKind.HIT, 3, "l1").miss_latency == 0
        assert (
            LoadOutcome(OutcomeKind.MISS, 350, "mem").miss_latency == 350
        )

    def test_empty_breakdown(self):
        stats = MemoryStats()
        assert stats.fraction(OutcomeKind.HIT) == 0.0
        assert stats.total_loads == 0
