"""Edge cases of program construction and validation."""

import pytest

from repro.isa.assembler import Assembler
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import Program


class TestValidation:
    def test_empty_program_is_valid(self):
        Program(name="empty").validate()

    def test_entry_out_of_range(self):
        program = Program(
            instructions=[Instruction(Opcode.HALT)], entry=5, name="p"
        )
        with pytest.raises(ValueError, match="entry"):
            program.validate()

    def test_jmp_needs_no_static_target(self):
        program = Program(
            instructions=[
                Instruction(Opcode.JMP, ra=1),
                Instruction(Opcode.HALT),
            ],
            name="p",
        )
        program.validate()

    def test_unresolved_branch_detected(self):
        program = Program(
            instructions=[
                Instruction(Opcode.BNE, ra=1, label="missing"),
                Instruction(Opcode.HALT),
            ],
            name="p",
        )
        with pytest.raises(ValueError, match="unresolved"):
            program.validate()

    def test_negative_target_rejected(self):
        program = Program(
            instructions=[
                Instruction(Opcode.BR, target=-1),
                Instruction(Opcode.HALT),
            ],
            name="p",
        )
        with pytest.raises(ValueError):
            program.validate()


class TestAssemblerEmitPath:
    def test_emit_checks_reserved(self):
        asm = Assembler("t")
        with pytest.raises(ValueError):
            asm.emit(Instruction(Opcode.LDA, rd=29, ra=31, disp=0))

    def test_emit_allows_stores_of_any_reg(self):
        asm = Assembler("t")
        # A store names r28 as its *value* (a read), which is fine.
        asm.emit(Instruction(Opcode.STQ, rd=28, ra=1, disp=0))
        assert asm.here == 1

    def test_label_returns_pc(self):
        asm = Assembler("t")
        asm.nop()
        assert asm.label("x") == 1
