"""Integration tests: the full pipeline from program to repaired trace.

These drive small custom workloads end to end and assert that the
machinery of the paper actually engages: traces form and link, the DLT
fires, prefetches are inserted and repaired, IPC improves.
"""

import random

import pytest

from repro.config import (
    MachineConfig,
    PrefetchPolicy,
    SimulationConfig,
    TridentConfig,
)
from repro.harness.runner import Simulation, run_simulation
from repro.isa.assembler import Assembler
from repro.isa.opcodes import Opcode
from repro.memory.mainmem import DataMemory, HeapAllocator
from repro.workloads.base import Workload, counted_loop
from repro.workloads.data import build_linked_list


def stride_workload(iters=200_000, streams=10) -> Workload:
    """A many-stream line-stride scan shaped so software prefetching wins
    (more concurrent streams than the eight hardware buffers)."""
    memory = DataMemory()
    alloc = HeapAllocator(memory)
    bases = [alloc.alloc_array(4_000_000) for _ in range(streams)]
    asm = Assembler("scan")
    for i, base in enumerate(bases):
        asm.li(f"r{3 + i}", base)
    close = counted_loop(asm, "r1", iters, "loop")
    for i in range(streams):
        asm.ldq("r2", f"r{3 + i}", 0)
        # Carried dependence (~8 cycles per stream) keeps the iteration
        # longer than the bus needs, so prefetch timeliness decides.
        asm.mulf("r20", "r20", rb="r2")
        asm.addf("r20", "r20", rb="r2")
    for i in range(streams):
        asm.lda(f"r{3 + i}", f"r{3 + i}", 64)
    close()
    asm.halt()
    return Workload(
        name="scan", program=asm.build(), memory=memory,
        description="test scan", kind="stride",
    )


class TestTraceLifecycle:
    def test_traces_form_and_link(self):
        sim = Simulation(
            stride_workload(),
            SimulationConfig(
                policy=PrefetchPolicy.SELF_REPAIRING,
                max_instructions=30_000,
            ),
        )
        result = sim.run()
        assert result.traces_linked >= 1
        assert result.core.trace_entries > 100
        assert result.core.trace_committed > 0

    def test_prefetches_inserted_and_repaired(self):
        sim = Simulation(
            stride_workload(),
            SimulationConfig(
                policy=PrefetchPolicy.SELF_REPAIRING,
                max_instructions=120_000,
            ),
        )
        result = sim.run()
        assert result.prefetches_inserted >= 1
        assert result.repairs_applied >= 3
        # The linked trace carries live prefetch instructions.
        traces = sim.runtime.code_cache.linked_traces()
        assert any(t.prefetch_instructions() for t in traces)

    def test_self_repairing_beats_hw_baseline(self):
        # galgel's shape (12 streams > 8 buffers) is the clearest case
        # where the software prefetcher must beat the hardware baseline.
        kwargs = dict(max_instructions=80_000, warmup_instructions=200_000)
        hw = run_simulation("galgel", policy=PrefetchPolicy.HW_ONLY, **kwargs)
        sr = run_simulation(
            "galgel", policy=PrefetchPolicy.SELF_REPAIRING, **kwargs
        )
        assert sr.speedup_over(hw) > 1.1

    def test_overhead_only_never_links(self):
        sim = Simulation(
            stride_workload(),
            SimulationConfig(
                policy=PrefetchPolicy.SELF_REPAIRING,
                max_instructions=40_000,
                overhead_only=True,
            ),
        )
        result = sim.run()
        assert result.core.trace_entries == 0
        assert result.traces_formed >= 1  # the optimizer still worked

    def test_trace_only_monitors_without_inserting(self):
        sim = Simulation(
            stride_workload(),
            SimulationConfig(
                policy=PrefetchPolicy.TRACE_ONLY,
                max_instructions=60_000,
            ),
        )
        result = sim.run()
        assert result.traces_linked >= 1
        assert result.prefetches_inserted == 0
        assert result.core.misses_in_traces > 0

    def test_functional_equivalence_across_policies(self):
        """Optimization must never change architectural results."""
        finals = []
        for policy in (
            PrefetchPolicy.NONE,
            PrefetchPolicy.HW_ONLY,
            PrefetchPolicy.SELF_REPAIRING,
        ):
            sim = Simulation(
                stride_workload(iters=3_000),
                SimulationConfig(policy=policy, max_instructions=10**9),
            )
            sim.run()
            assert sim.core.ctx.halted
            finals.append(list(sim.core.ctx.regs))
        assert finals[0] == finals[1] == finals[2]


class TestPointerPipeline:
    def make_chase(self, scramble):
        memory = DataMemory()
        alloc = HeapAllocator(memory)
        head, _ = build_linked_list(
            alloc, node_words=8, count=30_000,
            rng=random.Random(5), scramble=scramble,
        )
        asm = Assembler("chase")
        close_outer = counted_loop(asm, "r21", 1_000, "outer")
        asm.li("r1", head)
        close_inner = counted_loop(asm, "r22", 30_000, "walk")
        asm.ldq("r2", "r1", 8)
        asm.addq("r11", "r11", rb="r2")
        asm.mulq("r12", "r11", imm=3)
        asm.ldq("r1", "r1", 0)
        close_inner()
        close_outer()
        asm.halt()
        return Workload(
            name="chase", program=asm.build(), memory=memory,
            description="chase", kind="pointer",
        )

    def test_sequential_layout_gets_stride_prefetch(self):
        sim = Simulation(
            self.make_chase(scramble=False),
            SimulationConfig(
                policy=PrefetchPolicy.SELF_REPAIRING,
                max_instructions=100_000,
            ),
        )
        sim.run()
        kinds = {
            record.kind
            for trace in sim.runtime.code_cache.linked_traces()
            for record in trace.meta.get("records", {}).values()
        }
        assert "stride" in kinds  # DLT rescued the pointer chase

    def test_scrambled_layout_gets_pointer_prefetch(self):
        sim = Simulation(
            self.make_chase(scramble=True),
            SimulationConfig(
                policy=PrefetchPolicy.SELF_REPAIRING,
                max_instructions=100_000,
            ),
        )
        result = sim.run()
        kinds = {
            record.kind
            for trace in sim.runtime.code_cache.linked_traces()
            for record in trace.meta.get("records", {}).values()
        }
        assert "pointer" in kinds
        assert result.pointer_prefetches_inserted >= 1
        # The inserted non-faulting dereference executes.
        assert result.core.synthetic_executed > 0


class TestHelperInterference:
    def test_helper_activity_reported(self):
        result = run_simulation(
            "galgel",
            policy=PrefetchPolicy.SELF_REPAIRING,
            max_instructions=60_000,
        )
        assert 0.0 < result.helper_active_fraction <= 1.0
        assert result.helper_jobs.get("form", 0) >= 1

    def test_hw_only_has_no_helper(self):
        result = run_simulation(
            "swim", policy=PrefetchPolicy.HW_ONLY, max_instructions=20_000
        )
        assert result.helper_active_fraction == 0.0
        assert result.traces_linked == 0
