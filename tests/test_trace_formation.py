"""Tests for trace formation and the hot-trace representation."""

import pytest

from repro.config import TridentConfig
from repro.isa.assembler import Assembler
from repro.isa.opcodes import Opcode
from repro.trident.trace_formation import form_trace


def loop_program():
    """A simple counted loop with one conditional inside."""
    asm = Assembler("t")
    asm.li("r1", 100)            # 0
    asm.label("loop")            # head = 1
    asm.ldq("r2", "r3", 0)       # 1
    asm.beq("r2", "skip")        # 2
    asm.addq("r4", "r4", imm=1)  # 3
    asm.label("skip")            # 4
    asm.subq("r1", "r1", imm=1)  # 4
    asm.bne("r1", "loop")        # 5
    asm.halt()                   # 6
    return asm.build()


class TestFormTrace:
    def test_loop_trace_closes_at_head(self):
        program = loop_program()
        # Directions: beq not taken, back edge taken.
        trace = form_trace(program, 1, [False, True], TridentConfig())
        assert trace is not None
        assert trace.head_pc == 1
        assert trace.fallthrough_pc == 1  # loop closed
        opcodes = [t.inst.opcode for t in trace.body]
        assert opcodes == [
            Opcode.LDQ, Opcode.BEQ, Opcode.ADDQ, Opcode.SUBQ, Opcode.BNE,
        ]

    def test_taken_inner_branch_skips_block(self):
        program = loop_program()
        trace = form_trace(program, 1, [True, True], TridentConfig())
        opcodes = [t.inst.opcode for t in trace.body]
        assert Opcode.ADDQ not in opcodes

    def test_expected_directions_recorded(self):
        program = loop_program()
        trace = form_trace(program, 1, [False, True], TridentConfig())
        branches = [t for t in trace.body if t.inst.is_conditional_branch]
        assert [t.expected_taken for t in branches] == [False, True]

    def test_bitmap_exhaustion_sets_fallthrough(self):
        program = loop_program()
        trace = form_trace(program, 1, [False], TridentConfig())
        # Formation stopped at the back-edge bne (no direction left).
        assert trace.fallthrough_pc == 5
        assert trace.body[-1].inst.opcode is Opcode.SUBQ

    def test_instructions_are_copies(self):
        program = loop_program()
        trace = form_trace(program, 1, [False, True], TridentConfig())
        trace.body[0].inst.disp = 999
        assert program.instructions[1].disp == 0

    def test_halt_stops_formation(self):
        asm = Assembler("t")
        asm.label("head")
        asm.addq("r1", "r1", imm=1)
        asm.halt()
        program = asm.build()
        trace = form_trace(program, 0, [], TridentConfig())
        assert trace is None  # single instruction: too short

    def test_jmp_stops_formation(self):
        asm = Assembler("t")
        asm.label("head")
        asm.addq("r1", "r1", imm=1)
        asm.addq("r2", "r2", imm=1)
        asm.jmp("r1")
        asm.halt()
        program = asm.build()
        trace = form_trace(program, 0, [], TridentConfig())
        assert trace is not None
        assert len(trace.body) == 2
        assert trace.fallthrough_pc == 2  # the JMP itself

    def test_length_cap(self):
        asm = Assembler("t")
        asm.label("head")
        for _ in range(600):
            asm.addq("r1", "r1", imm=1)
        asm.bne("r1", "head")
        asm.halt()
        program = asm.build()
        config = TridentConfig()
        trace = form_trace(program, 0, [True], config)
        assert len(trace.body) == config.max_trace_instructions

    def test_unconditional_br_streamlined_away(self):
        asm = Assembler("t")
        asm.label("head")           # 0
        asm.addq("r1", "r1", imm=1)
        asm.br("join")              # 2
        asm.nop()                   # 3 (dead)
        asm.label("join")
        asm.subq("r2", "r2", imm=1)  # 4
        asm.bne("r2", "head")
        asm.halt()
        program = asm.build()
        trace = form_trace(program, 0, [True], TridentConfig())
        opcodes = [t.inst.opcode for t in trace.body]
        assert Opcode.BR not in opcodes
        assert Opcode.NOP not in opcodes
        assert Opcode.SUBQ in opcodes


class TestHotTrace:
    def test_load_pcs_and_find_load(self):
        program = loop_program()
        trace = form_trace(program, 1, [False, True], TridentConfig())
        assert trace.load_pcs() == [1]
        assert trace.find_load(1) is not None
        assert trace.find_load(3) is None

    def test_derive_bumps_version_and_copies_meta(self):
        program = loop_program()
        trace = form_trace(program, 1, [False, True], TridentConfig())
        trace.meta["records"] = {"x": 1}
        child = trace.derive(list(trace.body))
        assert child.version == trace.version + 1
        assert child.trace_id != trace.trace_id
        assert child.head_pc == trace.head_pc
        assert child.meta["records"] == {"x": 1}

    def test_original_length_excludes_synthetic(self):
        from repro.isa.instruction import Instruction
        from repro.trident.trace import TraceInstruction

        program = loop_program()
        trace = form_trace(program, 1, [False, True], TridentConfig())
        n = len(trace.body)
        trace.body.append(
            TraceInstruction(
                inst=Instruction(Opcode.PREFETCH, ra=1, disp=0),
                orig_pc=1,
                synthetic=True,
            )
        )
        assert trace.original_length == n
        assert len(trace.prefetch_instructions()) == 1
