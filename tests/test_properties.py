"""Property-based tests (hypothesis) on core data structures and
invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CacheConfig, DLTConfig
from repro.core.insertion import plan_group_offsets
from repro.core.repair import PrefetchRecord, repair
from repro.cpu.executor import _wrap64
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.memory.cache import SetAssociativeCache
from repro.memory.mainmem import DataMemory, HeapAllocator
from repro.trident.dlt import DelinquentLoadTable

addresses = st.integers(min_value=0, max_value=1 << 24)


class TestCacheProperties:
    @given(st.lists(addresses, min_size=1, max_size=300))
    @settings(max_examples=50)
    def test_capacity_never_exceeded(self, addrs):
        cache = SetAssociativeCache(CacheConfig(4 * 64 * 2, 2, 3, 64))
        for addr in addrs:
            cache.install(addr)
        for bucket in cache._sets.values():
            assert len(bucket) <= 2

    @given(st.lists(addresses, min_size=1, max_size=200))
    @settings(max_examples=50)
    def test_most_recent_install_is_resident(self, addrs):
        cache = SetAssociativeCache(CacheConfig(8 * 64 * 2, 2, 3, 64))
        for addr in addrs:
            cache.install(addr)
            assert cache.contains(addr)

    @given(st.lists(addresses, min_size=1, max_size=200))
    @settings(max_examples=50)
    def test_lookup_agrees_with_contains(self, addrs):
        cache = SetAssociativeCache(CacheConfig(8 * 64 * 2, 2, 3, 64))
        for i, addr in enumerate(addrs):
            if i % 2:
                cache.install(addr)
            resident = cache.contains(addr)
            line = cache.lookup(addr)
            assert (line is not None) == resident


class TestMemoryProperties:
    @given(
        st.lists(
            st.tuples(addresses, st.integers(-(2**40), 2**40)),
            min_size=1,
            max_size=100,
        )
    )
    @settings(max_examples=50)
    def test_read_your_writes(self, pairs):
        memory = DataMemory()
        expected = {}
        for addr, value in pairs:
            memory.write(addr, value)
            expected[addr & ~7] = value
        for addr, value in expected.items():
            assert memory.read(addr) == value

    @given(st.lists(st.integers(min_value=1, max_value=10_000), max_size=40))
    @settings(max_examples=50)
    def test_allocations_never_overlap(self, sizes):
        alloc = HeapAllocator(DataMemory())
        regions = []
        for size in sizes:
            base = alloc.alloc(size)
            regions.append((base, base + size))
        regions.sort()
        for (a_start, a_end), (b_start, _b_end) in zip(
            regions, regions[1:]
        ):
            assert a_end <= b_start

    @given(st.integers(min_value=1, max_value=200), st.booleans())
    @settings(max_examples=30)
    def test_linked_list_is_a_ring_over_all_nodes(self, count, scramble):
        from repro.workloads.data import build_linked_list

        memory = DataMemory()
        alloc = HeapAllocator(memory)
        head, nodes = build_linked_list(
            alloc,
            node_words=4,
            count=count,
            rng=random.Random(1),
            scramble=scramble,
        )
        seen = set()
        addr = head
        for _ in range(count):
            assert addr not in seen
            seen.add(addr)
            addr = memory.read(addr)
        assert addr == head  # closed ring
        assert seen == set(nodes)


class TestDLTProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=40),   # pc
                addresses,
                st.booleans(),                            # miss?
            ),
            min_size=1,
            max_size=600,
        )
    )
    @settings(max_examples=30)
    def test_counters_stay_bounded(self, updates):
        dlt = DelinquentLoadTable(DLTConfig(entries=16), 17.5)
        for pc, addr, is_miss in updates:
            dlt.update(pc, addr, is_miss, 350 if is_miss else 0)
        for entry in dlt.entries():
            assert 0 <= entry.confidence <= 15
            assert entry.miss_counter <= entry.access_counter
            assert entry.access_counter <= DLTConfig().access_window
        # Associativity bound.
        for bucket in dlt._sets.values():
            assert len(bucket) <= DLTConfig().associativity

    @given(st.integers(min_value=1, max_value=2000), st.integers(8, 4096))
    @settings(max_examples=40)
    def test_constant_stride_always_detected(self, start, stride):
        dlt = DelinquentLoadTable(DLTConfig(), 17.5)
        addr = start
        for _ in range(17):
            dlt.update(3, addr, False, 0)
            addr += stride
        assert dlt.predicted_stride(3) == stride


class TestInsertionProperties:
    @given(
        st.lists(
            st.integers(min_value=-4096, max_value=4096),
            min_size=1,
            max_size=20,
            unique=True,
        )
    )
    @settings(max_examples=100)
    def test_every_offset_covered_by_a_prefetch(self, offsets):
        line = 64
        plan = plan_group_offsets(sorted(offsets), line)
        for off in offsets:
            assert any(0 <= off - p < line for p in plan), (
                f"offset {off} uncovered by plan {plan}"
            )

    @given(
        st.lists(
            st.integers(min_value=0, max_value=1024),
            min_size=1,
            max_size=20,
            unique=True,
        )
    )
    @settings(max_examples=100)
    def test_plan_is_no_larger_than_offsets(self, offsets):
        plan = plan_group_offsets(sorted(offsets), 64)
        # Skipping may add one extra block per emitted prefetch but the
        # plan never exceeds the input size plus the trailing extra.
        assert len(plan) <= len(offsets) + 1


class TestRepairProperties:
    @given(
        st.lists(
            st.floats(min_value=1.0, max_value=400.0),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=50)
    def test_distance_stays_in_bounds(self, latencies):
        inst = Instruction(Opcode.PREFETCH, ra=1, disp=0)
        record = PrefetchRecord(
            group_key=(0,),
            load_pcs=(0,),
            base_reg=1,
            stride=8,
            distance=1,
            base_offsets=(0,),
            instructions=[inst],
            max_distance=16,
            repairs_left=32,
        )
        for latency in latencies:
            if record.mature:
                break
            repair(record, latency)
            assert 1 <= record.distance <= record.max_distance
            assert inst.disp == record.stride * record.distance
        # The budget rule guarantees termination.
        assert record.repairs_done <= 32


class TestExecutorProperties:
    @given(st.integers(-(2**70), 2**70))
    @settings(max_examples=200)
    def test_wrap64_is_signed_64bit(self, value):
        wrapped = _wrap64(value)
        assert -(2**63) <= wrapped < 2**63
        assert (wrapped - value) % (2**64) == 0

    @given(st.integers(-(2**63), 2**63 - 1))
    @settings(max_examples=100)
    def test_wrap64_identity_in_range(self, value):
        assert _wrap64(value) == value


class TestConfigProperties:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    @given(
        st.integers(min_value=32, max_value=4096),
        st.floats(min_value=0.005, max_value=0.5),
    )
    @settings(max_examples=60)
    def test_dlt_window_rate_roundtrip(self, window, rate):
        from repro.config import DLTConfig

        dlt = DLTConfig().with_window(window).with_miss_rate(rate)
        assert dlt.access_window == window
        assert 1 <= dlt.miss_threshold <= window
        # The realised rate approximates the requested one.
        # threshold is an integer >= 1: the realised rate can differ by
        # up to one count per window.
        assert abs(dlt.miss_rate_threshold - rate) <= max(
            1.0 / window, rate * 0.5
        )

    @given(st.integers(min_value=1, max_value=16))
    @settings(max_examples=20)
    def test_l1_resize_keeps_geometry_legal(self, factor):
        from repro.config import MachineConfig

        machine = MachineConfig().with_l1_size(factor * 16 * 1024)
        assert machine.l1.num_sets >= 1
        assert machine.l1.size_bytes == factor * 16 * 1024


def _delayed_fake_execute(job, *args, **kwargs):
    """Stand-in simulation for ordering tests: completion time is keyed
    off the job's seed, so later-submitted jobs can finish first."""
    import time
    from types import SimpleNamespace

    time.sleep((job.config.seed % 5) * 0.01)
    return (
        SimpleNamespace(workload=job.workload, seed=job.config.seed),
        0.0,
        None,
    )


class TestEngineOrderingProperties:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    @given(st.permutations(tuple(range(6))))
    @settings(max_examples=6, deadline=None)
    def test_outcomes_ignore_completion_order(self, order):
        """engine.run returns outcomes in submission order no matter
        which worker finishes first: seeds make early submissions slow
        and late ones fast, and any permutation of the job list must
        come back in exactly that permuted order."""
        from repro.harness import engine as engine_mod
        from repro.harness.engine import ExperimentEngine, make_job

        jobs = [
            make_job(
                f"workload-{i}",
                max_instructions=1,
                # Reverse-rank seeds: the first-submitted job sleeps the
                # longest, so completion order inverts submission order.
                seed=len(order) - rank,
            )
            for rank, i in enumerate(order)
        ]
        original = engine_mod._execute_job
        engine_mod._execute_job = _delayed_fake_execute
        try:
            outcomes = ExperimentEngine(workers=3, cache=None).run(jobs)
        finally:
            engine_mod._execute_job = original
        assert [o.result.workload for o in outcomes] == [
            f"workload-{i}" for i in order
        ]
        assert all(o.ok for o in outcomes)
