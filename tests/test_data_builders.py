"""Tests for the workload data-structure builders."""

import random

import pytest

from repro.memory.mainmem import (
    HEAP_BASE,
    WORD_SIZE,
    DataMemory,
    HeapAllocator,
)
from repro.workloads.data import (
    build_array,
    build_csr_matrix,
    build_hash_table,
    build_linked_list,
)


@pytest.fixture
def env():
    memory = DataMemory()
    return memory, HeapAllocator(memory)


class TestHeapAllocator:
    def test_alignment(self, env):
        _memory, alloc = env
        a = alloc.alloc(10, align=64)
        assert a % 64 == 0
        b = alloc.alloc(8, align=8)
        assert b % 8 == 0
        assert b >= a + 10

    def test_rejects_bad_sizes(self, env):
        _memory, alloc = env
        with pytest.raises(ValueError):
            alloc.alloc(0)
        with pytest.raises(ValueError):
            alloc.alloc(8, align=3)

    def test_stagger_applies_to_large_allocations(self, env):
        _memory, alloc = env
        first = alloc.alloc(128 * 1024)
        second = alloc.alloc(128 * 1024)
        # The set-phase offset differs between consecutive large blocks.
        period = HeapAllocator.STAGGER_PERIOD
        assert (first % period) != (second % period)

    def test_small_allocations_not_staggered(self, env):
        _memory, alloc = env
        a = alloc.alloc(64)
        b = alloc.alloc(64)
        assert b - a == 64

    def test_stagger_can_be_disabled(self):
        alloc = HeapAllocator(DataMemory(), stagger=False)
        a = alloc.alloc(128 * 1024)
        b = alloc.alloc(128 * 1024)
        assert b - a == 128 * 1024

    def test_alloc_array_initialises(self, env):
        memory, alloc = env
        base = alloc.alloc_array(4, init=[10, 20, 30, 40])
        assert [memory.read(base + i * 8) for i in range(4)] == \
            [10, 20, 30, 40]

    def test_scramble_requires_rng(self, env):
        _memory, alloc = env
        with pytest.raises(ValueError):
            alloc.alloc_nodes(4, 2, scramble=True)


class TestLinkedList:
    def test_sequential_layout_constant_stride(self, env):
        memory, alloc = env
        head, nodes = build_linked_list(alloc, node_words=4, count=50)
        strides = {
            memory.read(addr) - addr
            for addr in nodes[:-1]
            if memory.read(addr) != head
        }
        assert len(strides) == 1  # perfectly regular next pointers

    def test_segment_layout_mostly_regular(self, env):
        memory, alloc = env
        rng = random.Random(1)
        head, nodes = build_linked_list(
            alloc, node_words=4, count=256, rng=rng, segment=64
        )
        addr = head
        strides = []
        for _ in range(255):
            nxt = memory.read(addr)
            strides.append(nxt - addr)
            addr = nxt
        regular = max(set(strides), key=strides.count)
        share = strides.count(regular) / len(strides)
        assert share > 0.9  # breaks only at segment joins

    def test_pad_words_spread_nodes(self, env):
        memory, alloc = env
        head, nodes = build_linked_list(
            alloc, node_words=2, count=10, pad_words=6
        )
        deltas = {b - a for a, b in zip(sorted(nodes), sorted(nodes)[1:])}
        assert deltas == {8 * WORD_SIZE}

    def test_values_initialised(self, env):
        memory, alloc = env
        head, nodes = build_linked_list(alloc, node_words=4, count=5)
        assert memory.read(head + 8) != 0 or memory.is_mapped(head + 8)


class TestHashTable:
    def test_every_bucket_has_full_chain(self, env):
        memory, alloc = env
        rng = random.Random(2)
        base = build_hash_table(
            alloc, buckets=16, chain_length=3, node_words=4, rng=rng
        )
        for b in range(16):
            head = memory.read(base + b * WORD_SIZE)
            depth = 0
            while head and depth < 10:
                head = memory.read(head)
                depth += 1
            assert depth == 3

    def test_nodes_have_keys_and_values(self, env):
        memory, alloc = env
        rng = random.Random(3)
        base = build_hash_table(
            alloc, buckets=4, chain_length=2, node_words=4, rng=rng
        )
        head = memory.read(base)
        assert memory.is_mapped(head + WORD_SIZE)       # key
        assert memory.read(head + 2 * WORD_SIZE) != 0   # value


class TestCSR:
    def test_column_indices_in_range(self, env):
        memory, alloc = env
        rng = random.Random(4)
        col, val, x = build_csr_matrix(
            alloc, rows=10, nnz_per_row=5, num_cols=64, rng=rng
        )
        for i in range(50):
            index = memory.read(col + i * WORD_SIZE)
            assert 0 <= index < 64

    def test_regions_distinct(self, env):
        _memory, alloc = env
        rng = random.Random(5)
        col, val, x = build_csr_matrix(
            alloc, rows=8, nnz_per_row=4, num_cols=32, rng=rng
        )
        assert len({col, val, x}) == 3
        assert col < val < x


class TestBuildArray:
    def test_returns_heap_address(self, env):
        _memory, alloc = env
        base = build_array(alloc, 100)
        assert base >= HEAP_BASE
