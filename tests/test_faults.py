"""The resilience layer: fault plans, the injector, the watchdog, and
experiment failure isolation."""

import json

import pytest

from repro import (
    ConfigError,
    FaultEvent,
    FaultPlan,
    PrefetchPolicy,
    ReproError,
    Simulation,
    SimulationConfig,
    SimulationStallError,
    Watchdog,
    run_simulation,
)
from repro.harness import experiments
from repro.isa.assembler import Assembler
from repro.memory.mainmem import DataMemory, HeapAllocator
from repro.workloads.base import Workload, counted_loop


def stride_workload(iters=6_000, name="scan") -> Workload:
    """A small strided scan that forms traces and fires DLT events."""
    memory = DataMemory()
    alloc = HeapAllocator(memory)
    bases = [alloc.alloc_array(2_000_000) for _ in range(4)]
    asm = Assembler(name)
    for i, base in enumerate(bases):
        asm.li(f"r{3 + i}", base)
    close = counted_loop(asm, "r1", iters, "loop")
    for i in range(4):
        asm.ldq("r2", f"r{3 + i}", 0)
        asm.mulf("r20", "r20", rb="r2")
    for i in range(4):
        asm.lda(f"r{3 + i}", f"r{3 + i}", 64)
    close()
    asm.halt()
    return Workload(
        name=name, program=asm.build(), memory=memory,
        description="fault-test scan", kind="stride",
    )


def spin_workload() -> Workload:
    """An infinite loop: commits forever, never reaches its HALT."""
    asm = Assembler("spin")
    asm.label("loop")
    asm.addq("r2", "r2", imm=1)
    asm.br("loop")
    asm.halt()
    return Workload(
        name="spin", program=asm.build(), memory=DataMemory(),
        description="never halts", kind="irregular",
    )


# ---------------------------------------------------------------------------
# Fault plans: validation and serialisation.
# ---------------------------------------------------------------------------
class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan(
            events=(
                FaultEvent(kind="dram_latency", at_instruction=500,
                           magnitude=250, label="shift"),
                FaultEvent(kind="bus_contention", at_cycle=100,
                           duration_cycles=400, magnitude=2.0),
                FaultEvent(kind="cache_flush", at_cycle=900, magnitude=2),
            ),
            seed=7,
        )
        assert FaultPlan.from_json(json.dumps(plan.to_dict())) == plan

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "plan.json"
        plan = FaultPlan.context_switch_storm(period_cycles=1000, count=3)
        path.write_text(json.dumps(plan.to_dict()))
        assert FaultPlan.load(path) == plan
        assert len(plan) == 3

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ConfigError, match="cannot read fault plan"):
            FaultPlan.load(tmp_path / "nope.json")

    def test_invalid_json(self):
        with pytest.raises(ConfigError, match="not valid JSON"):
            FaultPlan.from_json("{broken")

    def test_unknown_kind(self):
        with pytest.raises(ConfigError, match="unknown fault kind"):
            FaultEvent(kind="cosmic_ray", at_cycle=1)

    def test_exactly_one_trigger(self):
        with pytest.raises(ConfigError, match="exactly one"):
            FaultEvent(kind="cache_flush", at_cycle=1, at_instruction=1)
        with pytest.raises(ConfigError, match="exactly one"):
            FaultEvent(kind="cache_flush")

    def test_negative_trigger(self):
        with pytest.raises(ConfigError, match="non-negative"):
            FaultEvent(kind="cache_flush", at_cycle=-1)

    def test_window_kind_needs_duration(self):
        with pytest.raises(ConfigError, match="duration_cycles > 0"):
            FaultEvent(kind="bus_contention", at_cycle=1, magnitude=2.0)

    def test_instant_kind_rejects_duration(self):
        with pytest.raises(ConfigError, match="instantaneous"):
            FaultEvent(kind="cache_flush", at_cycle=1, duration_cycles=10)

    @pytest.mark.parametrize(
        "kind,magnitude",
        [
            ("dram_latency", 0),
            ("dram_latency", -10),
            ("cache_flush", 4),
            ("dlt_corrupt", 0.0),
            ("dlt_evict", 1.5),
        ],
    )
    def test_bad_magnitudes(self, kind, magnitude):
        with pytest.raises(ConfigError):
            FaultEvent(kind=kind, at_cycle=1, magnitude=magnitude)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigError, match="unknown keys"):
            FaultEvent.from_dict({"kind": "cache_flush", "at_cycle": 1,
                                  "surprise": True})
        with pytest.raises(ConfigError, match="unknown keys"):
            FaultPlan.from_dict({"events": [], "extra": 1})


# ---------------------------------------------------------------------------
# Config and input validation.
# ---------------------------------------------------------------------------
class TestValidation:
    def test_zero_instruction_budget_rejected(self):
        with pytest.raises(ConfigError, match="max_instructions"):
            SimulationConfig(max_instructions=0)

    def test_negative_warmup_rejected(self):
        with pytest.raises(ConfigError, match="warmup_instructions"):
            SimulationConfig(warmup_instructions=-1)

    def test_policy_string_coerced(self):
        cfg = SimulationConfig(policy="hw_only")
        assert cfg.policy is PrefetchPolicy.HW_ONLY

    def test_unknown_policy_string_lists_choices(self):
        with pytest.raises(ConfigError, match="self_repairing"):
            SimulationConfig(policy="turbo")

    def test_bad_budgets_rejected(self):
        with pytest.raises(ConfigError, match="max_cycles"):
            SimulationConfig(max_cycles=0)
        with pytest.raises(ConfigError, match="wall_time_limit"):
            SimulationConfig(wall_time_limit=-2.0)

    def test_unknown_workload_lists_names(self):
        with pytest.raises(ConfigError, match="mcf"):
            Simulation("not_a_benchmark")

    def test_run_simulation_validates(self):
        with pytest.raises(ConfigError):
            run_simulation("mcf", max_instructions=-5)
        with pytest.raises(ConfigError):
            run_simulation(object())  # not a name or Workload

    def test_config_error_is_value_error_and_not_transient(self):
        exc = ConfigError("x")
        assert isinstance(exc, (ReproError, ValueError))
        assert exc.transient is False
        assert SimulationStallError("y").transient is True


# ---------------------------------------------------------------------------
# Injection: effects and determinism.
# ---------------------------------------------------------------------------
class TestInjection:
    def test_permanent_dram_fault_slows_run(self):
        clean = run_simulation(
            stride_workload(), policy=PrefetchPolicy.NONE,
            max_instructions=20_000,
        )
        plan = FaultPlan.latency_phase_shift(
            at_instruction=5_000, extra_cycles=400
        )
        faulty = run_simulation(
            stride_workload(), policy=PrefetchPolicy.NONE,
            max_instructions=20_000, fault_plan=plan,
        )
        assert faulty.faults_applied == 1
        assert faulty.fault_log[0]["kind"] == "dram_latency"
        assert "phase shift" in faulty.fault_log[0]["detail"]
        assert faulty.cycles > clean.cycles * 1.2

    def test_fixed_seed_runs_are_bit_identical(self):
        plan = FaultPlan(
            events=(
                FaultEvent(kind="dram_latency", at_cycle=4_000,
                           duration_cycles=8_000, magnitude=300),
                FaultEvent(kind="cache_flush", at_cycle=9_000, magnitude=2),
                FaultEvent(kind="dlt_corrupt", at_instruction=12_000,
                           magnitude=0.5),
            ),
            seed=11,
        )
        results = [
            run_simulation(
                stride_workload(),
                policy=PrefetchPolicy.SELF_REPAIRING,
                max_instructions=24_000,
                fault_plan=plan,
            )
            for _ in range(2)
        ]
        a, b = results
        assert a.cycles == b.cycles
        assert a.instructions == b.instructions
        assert a.fault_log == b.fault_log
        assert a.breakdown() == b.breakdown()
        assert a.repairs_applied == b.repairs_applied

    def test_cache_flush_empties_caches(self):
        plan = FaultPlan(
            events=(FaultEvent(kind="cache_flush", at_cycle=6_000,
                               magnitude=3),),
        )
        sim = Simulation(
            stride_workload(),
            SimulationConfig(policy=PrefetchPolicy.NONE,
                             max_instructions=20_000),
            fault_plan=plan,
        )
        result = sim.run()
        assert result.faults_applied == 1
        assert sim.hierarchy.lines_flushed > 0

    def test_dlt_event_drop_window(self):
        plan = FaultPlan(
            events=(FaultEvent(kind="dlt_drop_events", at_cycle=0,
                               duration_cycles=10_000_000),),
        )
        sim = Simulation(
            stride_workload(),
            SimulationConfig(policy=PrefetchPolicy.SELF_REPAIRING,
                             max_instructions=24_000),
            fault_plan=plan,
        )
        result = sim.run()
        assert sim.runtime.dlt_events_dropped > 0
        # Dropped events never reach the optimizer: nothing is inserted.
        assert result.prefetches_inserted == 0

    def test_helper_stall_counted(self):
        plan = FaultPlan(
            events=(FaultEvent(kind="helper_stall", at_cycle=100,
                               duration_cycles=5_000),),
        )
        sim = Simulation(
            stride_workload(),
            SimulationConfig(policy=PrefetchPolicy.SELF_REPAIRING,
                             max_instructions=20_000),
            fault_plan=plan,
        )
        sim.run()
        assert sim.runtime.helper.stalls == 1

    def test_runtime_faults_skipped_without_runtime(self):
        plan = FaultPlan(
            events=(FaultEvent(kind="helper_fail", at_cycle=100),),
        )
        sim = Simulation(
            stride_workload(),
            SimulationConfig(policy=PrefetchPolicy.NONE,
                             max_instructions=8_000),
            fault_plan=plan,
        )
        result = sim.run()
        assert result.faults_applied == 0
        assert sim.injector.faults_skipped == 1
        assert result.fault_log[0]["skipped"] is True

    def test_window_faults_revert(self):
        plan = FaultPlan(
            events=(FaultEvent(kind="bus_contention", at_cycle=1_000,
                               duration_cycles=2_000, magnitude=4.0),),
        )
        sim = Simulation(
            stride_workload(),
            SimulationConfig(policy=PrefetchPolicy.NONE,
                             max_instructions=20_000),
            fault_plan=plan,
        )
        sim.run()
        assert sim.hierarchy.bus_occupancy_scale == pytest.approx(1.0)
        assert sim.injector.exhausted


# ---------------------------------------------------------------------------
# Watchdog.
# ---------------------------------------------------------------------------
class TestWatchdog:
    def test_cycle_budget_trips_on_infinite_loop(self):
        with pytest.raises(SimulationStallError, match="cycle budget"):
            run_simulation(
                spin_workload(), policy=PrefetchPolicy.NONE,
                max_instructions=1_000_000_000, max_cycles=50_000,
            )

    def test_stall_error_carries_progress(self):
        try:
            run_simulation(
                spin_workload(), policy=PrefetchPolicy.NONE,
                max_instructions=1_000_000_000, max_cycles=50_000,
            )
        except SimulationStallError as exc:
            assert exc.committed > 0
            assert exc.cycles > 50_000
        else:
            pytest.fail("watchdog did not trip")

    def test_commit_stall_detection(self):
        dog = Watchdog()
        dog.start()
        dog.check(committed=10, cycles=100.0)
        with pytest.raises(SimulationStallError, match="commit stall"):
            dog.check(committed=10, cycles=5_000.0)
        assert dog.trips == 1

    def test_reset_progress_forgives_segment_boundary(self):
        dog = Watchdog()
        dog.check(committed=10, cycles=100.0)
        dog.reset_progress()
        dog.check(committed=10, cycles=200.0)  # no trip

    def test_wall_time_budget_with_fake_clock(self):
        now = [0.0]
        dog = Watchdog(wall_time_limit=5.0, clock=lambda: now[0])
        dog.start()
        dog.check(committed=1, cycles=1.0)
        now[0] = 6.0
        with pytest.raises(SimulationStallError, match="wall-time"):
            dog.check(committed=2, cycles=2.0)

    def test_exactly_reached_cycle_budget_does_not_trip(self):
        """Budgets are exclusive: landing *on* the limit is within it."""
        dog = Watchdog(max_cycles=1_000.0)
        dog.start()
        dog.check(committed=10, cycles=1_000.0)
        assert dog.trips == 0
        with pytest.raises(SimulationStallError, match="cycle budget"):
            dog.check(committed=20, cycles=1_000.5)

    def test_exactly_reached_wall_deadline_does_not_trip(self):
        now = [0.0]
        dog = Watchdog(wall_time_limit=5.0, clock=lambda: now[0])
        dog.start()
        now[0] = 5.0
        dog.check(committed=1, cycles=1.0)
        assert dog.trips == 0
        now[0] = 5.001
        with pytest.raises(SimulationStallError, match="wall-time"):
            dog.check(committed=2, cycles=2.0)

    def test_zero_cycle_budget(self):
        """max_cycles=0 means "no simulated time at all": the first
        cycle of progress trips, but a zero-cycle check stays within
        budget (the limit itself is inclusive)."""
        dog = Watchdog(max_cycles=0.0)
        dog.start()
        dog.check(committed=0, cycles=0.0)
        assert dog.trips == 0
        with pytest.raises(SimulationStallError, match="cycle budget"):
            dog.check(committed=1, cycles=1.0)

    def test_trip_inside_fault_window(self):
        """A watchdog firing while a fault plan is mid-flight must
        surface the stall (with progress attached), not be masked by —
        or corrupt — the injection machinery."""
        plan = FaultPlan.latency_phase_shift(
            at_instruction=100, extra_cycles=200, seed=1
        )
        try:
            run_simulation(
                spin_workload(), policy=PrefetchPolicy.NONE,
                max_instructions=1_000_000_000, max_cycles=40_000,
                fault_plan=plan,
            )
        except SimulationStallError as exc:
            assert exc.committed > 100  # the fault window had opened
            assert exc.cycles > 40_000
        else:
            pytest.fail("watchdog did not trip inside the fault window")


# ---------------------------------------------------------------------------
# Experiment failure isolation.
# ---------------------------------------------------------------------------
class TestIsolation:
    def test_sweep_survives_one_failing_workload(self, monkeypatch):
        # Figures now run through the experiment engine, so the sabotage
        # targets its single simulation seam rather than run_simulation.
        from repro.harness import engine as engine_mod

        real = engine_mod._execute_job

        def sabotaged(job, *args, **kwargs):
            if job.workload == "art":
                raise RuntimeError("injected crash")
            return real(job, *args, **kwargs)

        monkeypatch.setattr(engine_mod, "_execute_job", sabotaged)
        result = experiments.fig2_hw_baseline(
            workloads=["mcf", "art", "swim"],
            max_instructions=2_000, warmup=0,
        )
        assert [r["workload"] for r in result.rows] == ["mcf", "swim"]
        assert len(result.errors) == 1
        record = result.errors[0]
        assert record["workload"] == "art"
        assert record["type"] == "RuntimeError"
        rendered = result.render()
        assert "errors (1 workload failure isolated" in rendered
        assert "injected crash" in rendered

    def test_transient_error_retried_once(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) == 1:
                raise SimulationStallError("wall-time blip")
            return "ok"

        errors = []
        assert experiments.run_isolated(errors, "mcf", flaky) == "ok"
        assert len(calls) == 2
        assert errors == []

    def test_transient_error_recorded_after_second_failure(self):
        def always_stalls():
            raise SimulationStallError("stuck")

        errors = []
        assert experiments.run_isolated(errors, "mcf", always_stalls) is None
        assert errors[0]["retried"] is True

    def test_non_transient_error_not_retried(self):
        calls = []

        def broken():
            calls.append(1)
            raise ValueError("bad input")

        errors = []
        assert experiments.run_isolated(errors, "mcf", broken) is None
        assert len(calls) == 1
        assert "retried" not in errors[0]


# ---------------------------------------------------------------------------
# The resilience experiment.
# ---------------------------------------------------------------------------
class TestResilienceExperiment:
    def test_smoke(self):
        result = experiments.resilience(
            workloads=["mcf"], max_instructions=8_000, warmup=4_000,
            chunks=4,
        )
        assert not result.errors
        (row,) = result.rows
        for key in ("basic", "self_repairing"):
            metrics = row[key]
            assert len(metrics["windows"]) == 4
            assert metrics["pre_ipc"] > 0
            assert metrics["dip_ipc"] > 0
        rendered = result.render()
        assert "Resilience" in rendered
        assert "self-repairing" in rendered

    def test_registered_in_cli(self):
        from repro.__main__ import _FIGURES

        assert _FIGURES["resilience"] is experiments.resilience


# ---------------------------------------------------------------------------
# CLI integration.
# ---------------------------------------------------------------------------
class TestCLI:
    def test_inject_flag(self, tmp_path, capsys):
        from repro.__main__ import main

        plan = FaultPlan.latency_phase_shift(
            at_instruction=2_000, extra_cycles=300
        )
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan.to_dict()))
        code = main(
            ["run", "swim", "--instructions", "6000", "--warmup", "0",
             "--inject", str(path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "faults applied" in out
        assert "fault log" in out
        assert "dram_latency" in out

    def test_inject_missing_plan_is_clean_error(self, tmp_path, capsys):
        from repro.__main__ import main

        code = main(
            ["run", "swim", "--instructions", "5000",
             "--inject", str(tmp_path / "absent.json")]
        )
        assert code == 2
        assert "cannot read fault plan" in capsys.readouterr().err

    def test_wall_time_limit_trip_is_clean_error(self, capsys):
        from repro.__main__ import main

        code = main(
            ["run", "mcf", "--instructions", "2000000",
             "--warmup", "0", "--wall-time-limit", "0.05"]
        )
        assert code == 2
        assert "wall-time" in capsys.readouterr().err

    def test_flags_documented_in_help(self, capsys):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["run", "--help"])
        out = capsys.readouterr().out
        assert "--inject" in out
        assert "--wall-time-limit" in out
        assert "--max-cycles" in out

    def test_figure_resilience(self, capsys):
        from repro.__main__ import main

        code = main(
            ["figure", "resilience", "--workloads", "swim",
             "--instructions", "8000", "--warmup", "4000"]
        )
        assert code == 0
        assert "Resilience" in capsys.readouterr().out
