"""Fleet telemetry: spans, the hub, exports, and the disabled-path
invariant (telemetry on and off produce byte-identical results)."""

from __future__ import annotations

import json
import threading

import pytest

from repro.harness.cache import ResultCache
from repro.harness.engine import EngineStats, ExperimentEngine, make_job
from repro.harness.journal import JobJournal
from repro.obs import EventRing, TraceEvent
from repro.obs.export import fleet_chrome_trace, validate_chrome_trace
from repro.obs.spans import Span, SpanRecorder, TraceContext, new_sweep_id
from repro.obs.telemetry import (
    SUMMARY_GAUGES,
    TelemetryHub,
    fleet_summary,
    format_engine_summary,
    prometheus_text,
    read_snapshot,
    read_spans,
    spans_cover_journal,
)

BUDGET = 2_000
WARMUP = 200


def _jobs(workloads=("art", "dot"), **kwargs):
    return [
        make_job(
            w, max_instructions=BUDGET, warmup_instructions=WARMUP,
            **kwargs,
        )
        for w in workloads
    ]


class TestTraceContext:
    def test_round_trip(self):
        ctx = TraceContext("sweep-1", "abc123", 2)
        assert TraceContext.from_dict(ctx.to_dict()) == ctx

    def test_for_job_and_retry(self):
        sweep = TraceContext("sweep-1")
        job = sweep.for_job("k", 0)
        assert job.job_key == "k" and job.sweep_id == "sweep-1"
        again = job.retry()
        assert again.attempt == 1 and again.job_key == "k"

    def test_sweep_ids_are_distinct(self):
        assert new_sweep_id() != TraceContext("x").sweep_id


class TestSpanRecorder:
    def test_buffers_without_sink_and_drains(self):
        recorder = SpanRecorder(TraceContext("s"), role="worker")
        with recorder.span("run", foo=1):
            pass
        recorder.instant("commit", ok=True)
        drained = recorder.drain()
        assert [d["name"] for d in drained] == ["run", "commit"]
        assert drained[0]["role"] == "worker"
        assert drained[0]["fields"] == {"foo": 1}
        assert recorder.drain() == []

    def test_sink_receives_spans_immediately(self):
        seen = []
        recorder = SpanRecorder(TraceContext("s"), sink=seen.append)
        recorder.instant("submit")
        assert len(seen) == 1 and seen[0]["name"] == "submit"
        assert recorder.drain() == []  # nothing buffered

    def test_broken_sink_disables_itself(self):
        def explode(_record):
            raise BrokenPipeError

        recorder = SpanRecorder(TraceContext("s"), sink=explode)
        recorder.instant("submit")  # swallowed
        assert recorder.sink is None
        recorder.instant("commit")  # now buffers
        assert [d["name"] for d in recorder.drain()] == ["commit"]

    def test_span_context_manager_marks_errors(self):
        recorder = SpanRecorder(TraceContext("s"))
        with pytest.raises(ValueError):
            with recorder.span("run"):
                raise ValueError("boom")
        [record] = recorder.drain()
        assert record["fields"]["error"] is True
        assert record["end_s"] >= record["start_s"]

    def test_sample_sink_produces_sample_records(self):
        recorder = SpanRecorder(TraceContext("s", "key1"))
        forward = recorder.sample_sink()
        forward({"ipc": 1.25, "cycle": 500})
        [record] = recorder.drain()
        assert record["type"] == "sample"
        assert record["job_key"] == "key1"
        assert record["fields"]["ipc"] == 1.25

    def test_span_round_trip(self):
        span = Span(
            "run", TraceContext("s", "k", 1), start_s=1.0, end_s=2.0,
            pid=42, role="worker", fields={"ok": True},
        )
        back = Span.from_dict(span.to_dict())
        assert back == span
        assert back.duration_s == 1.0


class TestEngineSummaryFormat:
    def test_stats_summary_matches_gauge_summary(self):
        """Satellite 1: one formatter behind both renderings."""
        stats = EngineStats(
            jobs_run=3, jobs_cached=2, jobs_resumed=1, jobs_failed=0,
            leases_reclaimed=4, jobs_retried=3, jobs_quarantined=1,
            wall_time_spent_s=1.23, wall_time_saved_s=4.56,
        )
        hub = TelemetryHub()
        pairs = {
            "run": 3, "cached": 2, "resumed": 1, "failed": 0,
            "reclaimed": 4, "retried": 3, "quarantined": 1,
        }
        for label, gauge in SUMMARY_GAUGES:
            hub.metrics.gauge(gauge).set(pairs[label])
        hub.metrics.gauge("engine.wall_time_spent_s").set(1.23)
        hub.metrics.gauge("engine.wall_time_saved_s").set(4.56)
        assert stats.summary() == fleet_summary(hub.metrics)

    def test_summary_shape_is_ci_greppable(self):
        """CI greps 'engine: run=N cached=N'; the layout is frozen."""
        line = format_engine_summary({"run": 5, "cached": 2})
        assert line.startswith("engine: run=5 cached=2 ")
        assert line.endswith("spent=0.0s saved=0.0s")


class TestPrometheusText:
    def test_counters_gauges_histograms(self):
        hub = TelemetryHub()
        hub.metrics.counter("fleet.cache_probes").inc(3)
        hub.metrics.gauge("fleet.workers").set(4)
        hist = hub.metrics.histogram("load.latency", bounds=[1, 10])
        hist.observe(0.5)
        hist.observe(20.0)
        text = prometheus_text(hub.metrics)
        assert "# TYPE repro_fleet_cache_probes counter" in text
        assert "repro_fleet_cache_probes 3" in text
        assert "# TYPE repro_fleet_workers gauge" in text
        assert 'repro_load_latency_bucket{le="+Inf"} 2' in text
        assert "repro_load_latency_count 2" in text
        assert text.endswith("\n")


class TestTelemetryHub:
    def test_lifecycle_updates_gauges(self):
        hub = TelemetryHub()
        hub.sweep_started(workers=4)
        hub.job_submitted("a")
        hub.job_submitted("b")
        assert hub.metrics.gauge("fleet.queue_depth").value == 2
        hub.cache_probe("a", hit=True, elapsed_s=0.01)
        hub.cache_probe("b", hit=False, elapsed_s=0.01)
        assert hub.metrics.gauge("fleet.cache_hit_rate").value == 0.5
        hub.job_finished("a", ok=True, cached=True, cycles=100.0)
        assert hub.metrics.gauge("fleet.queue_depth").value == 1
        assert hub.metrics.gauge("fleet.sim_cycles_per_s").value > 0
        hub.workers_busy(3, 4)
        assert hub.metrics.gauge("fleet.workers_busy").value == 3
        assert hub.metrics.gauge("fleet.workers_idle").value == 1

    def test_ingest_routes_samples_to_ring_and_spans_to_list(self):
        hub = TelemetryHub()
        hub.ingest({
            "type": "sample", "name": "sample", "job_key": "k",
            "fields": {"ipc": 1.0, "index": 3},
        })
        hub.ingest({
            "type": "span", "name": "run", "job_key": "k",
            "start_s": 1.0, "end_s": 2.0, "pid": 7,
        })
        assert len(hub.spans()) == 1
        [event] = list(hub.ring)
        assert event.kind == "fleet_sample"
        assert event.fields["job_key"] == "k"

    def test_reclaim_retry_and_quarantine_markers(self):
        hub = TelemetryHub()
        hub.job_submitted("k")
        hub.job_reclaimed("k", attempt=1, reason="Crash", retrying=True)
        hub.job_reclaimed("k", attempt=2, reason="Crash", retrying=False)
        names = [s["name"] for s in hub.spans()]
        assert names.count("reclaim") == 2
        assert "retry" in names and "quarantine" in names

    def test_flush_writes_live_feed(self, tmp_path):
        hub = TelemetryHub(out_dir=tmp_path)
        hub.job_submitted("k")
        hub.job_finished("k", ok=True, cycles=10.0)
        hub.flush()
        snapshot = read_snapshot(tmp_path)
        assert snapshot["sweep_id"] == hub.sweep_id
        assert snapshot["spans_recorded"] == len(hub.spans())
        assert (tmp_path / "telemetry.prom").read_text().startswith("#")
        assert [s["name"] for s in read_spans(tmp_path)] == [
            s["name"] for s in hub.spans()
        ]

    def test_flush_appends_late_arriving_worker_spans(self, tmp_path):
        """Regression: a worker span arriving *after* a flush but with
        an *earlier* start time must still reach spans.jsonl."""
        hub = TelemetryHub(out_dir=tmp_path)
        hub.instant("submit", "k")
        hub.flush()
        hub.ingest({
            "type": "span", "name": "run", "job_key": "k",
            "start_s": 0.0, "end_s": 1.0, "pid": 9, "role": "worker",
        })
        hub.flush()
        names = sorted(s["name"] for s in read_spans(tmp_path))
        assert names == ["run", "submit"]


class TestFleetTrace:
    def _spans(self):
        return [
            {"type": "span", "name": "submit", "job_key": "aaa",
             "attempt": 0, "start_s": 1.0, "end_s": 1.0, "pid": 1,
             "role": "engine"},
            {"type": "span", "name": "run", "job_key": "aaa",
             "attempt": 0, "start_s": 1.5, "end_s": 3.0, "pid": 2,
             "role": "worker", "fields": {"workload": "art"}},
            {"type": "sample", "name": "sample", "job_key": "aaa",
             "attempt": 0, "start_s": 2.0, "end_s": 2.0, "pid": 2,
             "role": "worker", "fields": {"ipc": 1.0}},
        ]

    def test_valid_and_stitched(self):
        payload = fleet_chrome_trace(self._spans())
        assert validate_chrome_trace(payload) == []
        pids = {e["pid"] for e in payload["traceEvents"]}
        assert pids == {1, 2}
        names = {
            e["args"]["name"]
            for e in payload["traceEvents"]
            if e["name"] == "process_name"
        }
        assert names == {
            "repro engine (pid 1)", "repro worker (pid 2)",
        }

    def test_run_is_duration_slice_markers_are_instants(self):
        events = fleet_chrome_trace(self._spans())["traceEvents"]
        run = next(e for e in events if e["name"] == "run")
        assert run["ph"] == "X" and run["dur"] == pytest.approx(1.5e6)
        submit = next(e for e in events if e["name"] == "submit")
        assert submit["ph"] == "i"

    def test_track_assignment_is_deterministic(self):
        one = fleet_chrome_trace(self._spans())
        two = fleet_chrome_trace(self._spans())
        assert one == two

    def test_open_span_renders_as_instant(self):
        payload = fleet_chrome_trace([
            {"type": "span", "name": "run", "job_key": "a",
             "start_s": 1.0, "end_s": None, "pid": 1, "role": "worker"},
        ])
        assert validate_chrome_trace(payload) == []
        run = next(
            e for e in payload["traceEvents"] if e["name"] == "run"
        )
        assert run["ph"] == "i"


class TestSpansCoverJournal:
    def _journal_state(self, tmp_path, events):
        journal = JobJournal(tmp_path / "j", fsync=False)
        for event, key, data in events:
            journal.append(event, key=key, **data)
        journal.close()
        return journal.recover()

    def test_full_coverage_passes(self, tmp_path):
        state = self._journal_state(tmp_path, [
            ("submit", "k1", {}), ("start", "k1", {}),
            ("done", "k1", {"elapsed_s": 0.1}),
        ])
        spans = [
            {"name": "submit", "job_key": "k1"},
            {"name": "run", "job_key": "k1"},
            {"name": "commit", "job_key": "k1"},
        ]
        assert spans_cover_journal(spans, state) == []

    def test_missing_run_and_commit_flagged(self, tmp_path):
        state = self._journal_state(tmp_path, [
            ("submit", "k1", {}), ("done", "k1", {"elapsed_s": 0.1}),
        ])
        problems = spans_cover_journal(
            [{"name": "submit", "job_key": "k1"}], state
        )
        assert any("commit" in p for p in problems)
        assert any("run" in p for p in problems)

    def test_cache_hit_counts_as_done(self, tmp_path):
        state = self._journal_state(tmp_path, [
            ("submit", "k1", {}), ("cached", "k1", {}),
        ])
        spans = [
            {"name": "submit", "job_key": "k1"},
            {"name": "cache-probe", "job_key": "k1",
             "fields": {"hit": True}},
            {"name": "commit", "job_key": "k1"},
        ]
        assert spans_cover_journal(spans, state) == []

    def test_reclaims_and_quarantine_must_have_spans(self, tmp_path):
        state = self._journal_state(tmp_path, [
            ("submit", "k1", {}),
            ("reclaimed", "k1", {"reason": "Crash", "attempts": 1}),
            ("reclaimed", "k1", {"reason": "Crash", "attempts": 2}),
            ("quarantined", "k1", {"error": {"type": "Poison"}}),
        ])
        spans = [
            {"name": "submit", "job_key": "k1"},
            {"name": "reclaim", "job_key": "k1"},
            {"name": "commit", "job_key": "k1"},
        ]
        problems = spans_cover_journal(spans, state)
        assert any("reclaim" in p for p in problems)
        assert any("quarantine" in p for p in problems)


class TestEventRingConcurrentStreaming:
    def test_wraparound_under_concurrent_appends(self):
        """Satellite 3: the hub's live ring accepts concurrent feeders
        (supervisor drain thread + engine) and keeps exactly the newest
        window once wrapped."""
        ring = EventRing(64)
        threads = [
            threading.Thread(
                target=lambda base: [
                    ring.append(TraceEvent(base + i, "fleet_sample", {}))
                    for i in range(200)
                ],
                args=(t * 1000,),
            )
            for t in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        events = ring.events()
        assert len(events) == 64
        summary = ring.summary()
        assert summary["total_emitted"] == 800
        assert summary["dropped"] == 800 - 64

    def test_hub_ring_wraps_without_losing_count(self):
        hub = TelemetryHub(ring_capacity=8)
        for i in range(50):
            hub.ingest({
                "type": "sample", "name": "sample", "job_key": "k",
                "fields": {"index": i},
            })
        assert len(list(hub.ring)) == 8
        assert hub.ring.summary()["total_emitted"] == 50


class TestValidatorEdgeCases:
    def test_rejects_non_object_top_level(self):
        assert validate_chrome_trace([]) == ["top level is not an object"]

    def test_rejects_missing_events(self):
        assert validate_chrome_trace({}) == [
            "traceEvents missing or not a list"
        ]

    def test_flags_bad_phase_missing_ts_and_missing_dur(self):
        problems = validate_chrome_trace({"traceEvents": [
            {"name": "x", "ph": "Q", "pid": 0},
            {"name": "y", "ph": "i", "pid": 0},
            {"name": "z", "ph": "X", "ts": 1, "pid": 0},
        ]})
        assert any("invalid ph" in p for p in problems)
        assert any("has no ts" in p for p in problems)
        assert any("without dur" in p for p in problems)


class TestTelemetryEndToEnd:
    def _run(self, tmp_path, tag, telemetry=False, **engine_kwargs):
        journal = None
        hub = None
        if telemetry:
            journal = JobJournal(tmp_path / f"j{tag}", fsync=False)
            hub = TelemetryHub(out_dir=tmp_path / f"j{tag}")
        engine = ExperimentEngine(
            cache=ResultCache(tmp_path / f"c{tag}"),
            journal=journal,
            telemetry=hub,
            **engine_kwargs,
        )
        jobs = _jobs(sample_interval=500, checkpoint_every=1000)
        outcomes = engine.run(jobs)
        results = [o.result.to_dict() for o in outcomes]
        return engine, hub, journal, results

    def test_pool_results_identical_and_spans_cover(self, tmp_path):
        _, _, _, baseline = self._run(tmp_path, "off", workers=2)
        engine, hub, journal, results = self._run(
            tmp_path, "on", telemetry=True, workers=2
        )
        assert results == baseline
        assert spans_cover_journal(hub.spans(), journal.recover()) == []
        assert validate_chrome_trace(hub.chrome_trace()) == []
        roles = {s["role"] for s in hub.spans()}
        assert roles == {"engine", "worker"}

    def test_supervised_streams_spans_live(self, tmp_path):
        _, _, _, baseline = self._run(tmp_path, "off2", workers=2)
        engine, hub, journal, results = self._run(
            tmp_path, "sup", telemetry=True, workers=2, supervised=True,
        )
        assert results == baseline
        assert spans_cover_journal(hub.spans(), journal.recover()) == []
        # Supervised workers stream: spans were ingested, none rode a
        # pickled outcome.
        assert hub.ingested > 0
        # The interval sampler's windows arrived live in the ring.
        assert hub.ring.summary()["total_emitted"] > 0

    def test_cached_replay_probes_hit(self, tmp_path):
        self._run(tmp_path, "warm")
        engine = ExperimentEngine(
            cache=ResultCache(tmp_path / "cwarm"),
            telemetry=TelemetryHub(),
        )
        outcomes = engine.run(_jobs(
            sample_interval=500, checkpoint_every=1000
        ))
        assert all(o.cached for o in outcomes)
        probes = [
            s for s in engine.telemetry.spans()
            if s["name"] == "cache-probe"
        ]
        assert probes and all(s["fields"]["hit"] for s in probes)
        assert engine.telemetry.metrics.gauge(
            "fleet.cache_hit_rate"
        ).value == 1.0

    def test_telemetry_off_pays_no_recording(self, tmp_path):
        engine, hub, _, _ = self._run(tmp_path, "plain")
        assert hub is None
        assert engine.telemetry is None


class TestObserverSnapshotInvariant:
    def test_sample_sink_excluded_from_pickle(self):
        import pickle

        from repro.obs import Observer

        observer = Observer(sample_interval=100)
        observer.sample_sink = lambda record: None  # unpicklable
        clone = pickle.loads(pickle.dumps(observer))
        assert clone.sample_sink is None

    def test_snapshot_bytes_identical_with_and_without_sink(self):
        import pickle

        from repro.obs import Observer

        plain = Observer(sample_interval=100)
        wired = Observer(sample_interval=100)
        wired.sample_sink = lambda record: None
        assert pickle.dumps(plain) == pickle.dumps(wired)
