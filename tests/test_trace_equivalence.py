"""Property test: optimized hot traces preserve program semantics.

For random loop programs, running to completion with the full Trident +
self-repairing pipeline must produce exactly the architectural state of
plain execution — traces, base optimizations, inserted prefetches, and
repairs may never change results.  This is the safety property the whole
dynamic-optimization approach rests on.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import PrefetchPolicy, SimulationConfig
from repro.harness.runner import Simulation
from repro.isa.assembler import Assembler
from repro.memory.mainmem import DataMemory, HeapAllocator
from repro.workloads.base import Workload

# Body-op vocabulary: (kind, payload)
body_ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=6),
        st.integers(min_value=0, max_value=3),
    ),
    min_size=2,
    max_size=10,
)


def build_program(ops, iters):
    memory = DataMemory()
    alloc = HeapAllocator(memory)
    base = alloc.alloc_array(200_000)
    asm = Assembler("rand")
    asm.li("r2", base)
    asm.li("r3", base + 800_000)
    asm.li("r1", iters)
    asm.label("loop")
    for index, (kind, payload) in enumerate(ops):
        if kind == 0:
            asm.ldq("r4", "r2", payload * 8)
        elif kind == 1:
            asm.addq("r5", "r5", rb="r4")
        elif kind == 2:
            asm.mulq("r6", "r5", imm=payload + 1)
        elif kind == 3:
            asm.stq("r5", "r3", payload * 8)
        elif kind == 4:
            asm.lda("r2", "r2", 8 * (payload + 1))
        elif kind == 5:
            asm.xor("r5", "r5", rb="r6")
        else:
            # A data-dependent branch: traces will exit early sometimes.
            asm.and_("r7", "r5", imm=1)
            asm.beq("r7", f"skip{index}")
            asm.addq("r8", "r8", imm=1)
            asm.label(f"skip{index}")
    asm.subq("r1", "r1", imm=1)
    asm.bne("r1", "loop")
    asm.halt()
    return Workload(
        name="rand", program=asm.build(), memory=memory,
        description="random", kind="mixed",
    )


def final_state(workload, policy):
    sim = Simulation(
        workload,
        SimulationConfig(policy=policy, max_instructions=10**9),
    )
    sim.run()
    assert sim.core.ctx.halted
    # Architectural state: registers plus every written memory word.
    return list(sim.core.ctx.regs), dict(workload.memory._words)


class TestTraceEquivalence:
    @given(body_ops)
    @settings(max_examples=12, deadline=None)
    def test_full_pipeline_preserves_semantics(self, ops):
        plain_regs, plain_mem = final_state(
            build_program(ops, iters=900), PrefetchPolicy.NONE
        )
        opt_regs, opt_mem = final_state(
            build_program(ops, iters=900), PrefetchPolicy.SELF_REPAIRING
        )
        assert plain_regs == opt_regs
        assert plain_mem == opt_mem

    @given(body_ops)
    @settings(max_examples=6, deadline=None)
    def test_basic_policy_preserves_semantics(self, ops):
        plain_regs, plain_mem = final_state(
            build_program(ops, iters=700), PrefetchPolicy.NONE
        )
        opt_regs, opt_mem = final_state(
            build_program(ops, iters=700), PrefetchPolicy.BASIC
        )
        assert plain_regs == opt_regs
        assert plain_mem == opt_mem
