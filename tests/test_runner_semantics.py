"""Runner semantics: warmup accounting, stat resets, result integrity."""

import pytest

from repro.config import PrefetchPolicy, SimulationConfig
from repro.harness.runner import Simulation, run_simulation


class TestWarmupSemantics:
    def test_post_warmup_stats_exclude_warmup(self):
        cold = run_simulation(
            "swim", policy=PrefetchPolicy.HW_ONLY,
            max_instructions=20_000, warmup_instructions=0,
        )
        warm = run_simulation(
            "swim", policy=PrefetchPolicy.HW_ONLY,
            max_instructions=20_000, warmup_instructions=60_000,
        )
        # Warm caches: the measured interval has a higher hit fraction
        # than a cold start over the same instruction count.
        assert warm.breakdown()["hit"] >= cold.breakdown()["hit"]
        assert warm.instructions == cold.instructions == 20_000

    def test_warmup_keeps_optimizer_state(self):
        warm = run_simulation(
            "mcf", policy=PrefetchPolicy.SELF_REPAIRING,
            max_instructions=10_000, warmup_instructions=120_000,
        )
        # Prefetch insertion happened during warmup; the measured window
        # inherits the linked, repaired traces.
        assert warm.prefetches_inserted >= 1
        assert warm.traces_linked >= 1

    def test_interval_ipc_differs_from_whole_run(self):
        sim = Simulation(
            "mcf",
            SimulationConfig(
                policy=PrefetchPolicy.SELF_REPAIRING,
                max_instructions=20_000,
                warmup_instructions=150_000,
            ),
        )
        result = sim.run()
        whole_run_ipc = sim.core.stats.committed / sim.core.cycles
        # The measured window (post-convergence) beats the lifetime
        # average, which drags the slow ramp along.
        assert result.ipc > whole_run_ipc

    def test_miss_profile_covers_measured_window_only(self):
        result = run_simulation(
            "swim", policy=PrefetchPolicy.NONE,
            max_instructions=10_000, warmup_instructions=30_000,
        )
        profile = result.miss_profile()
        assert sum(profile.values()) == result.core.misses_total


class TestResultIntegrity:
    def test_cycles_positive_and_finite(self):
        result = run_simulation(
            "gap", policy=PrefetchPolicy.NONE, max_instructions=5_000
        )
        assert 0 < result.cycles < float("inf")
        assert 0 < result.ipc < 8

    def test_helper_jobs_only_for_sw_policies(self):
        hw = run_simulation(
            "gap", policy=PrefetchPolicy.HW_ONLY, max_instructions=5_000
        )
        assert hw.helper_jobs == {}
        sw = run_simulation(
            "gap", policy=PrefetchPolicy.SELF_REPAIRING,
            max_instructions=60_000,
        )
        assert sw.helper_jobs.get("form", 0) >= 1

    def test_to_dict_round_trips_through_json(self):
        import json

        result = run_simulation(
            "swim", policy=PrefetchPolicy.SELF_REPAIRING,
            max_instructions=15_000,
        )
        data = json.loads(json.dumps(result.to_dict()))
        assert data["instructions"] == 15_000
        assert data["policy"] == "self_repairing"
