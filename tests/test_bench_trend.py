"""Perf-trend gate: history parsing, series keying, regression math."""

import json
import pathlib
import sys

import pytest

_TOOLS = pathlib.Path(__file__).resolve().parent.parent / "tools"
if str(_TOOLS) not in sys.path:
    sys.path.insert(0, str(_TOOLS))

import bench_trend  # noqa: E402


def _record(speedup=None, walls=None, instructions=8000, warmup=2000):
    record = {
        "bench": "interp_fastpath",
        "budget": {"instructions": instructions, "warmup": warmup},
        "recorded_at": "2026-08-08T00:00:00+00:00",
        "git_rev": "abc1234",
    }
    if speedup is not None:
        record["speedup"] = speedup
    if walls is not None:
        record["wall_times_s"] = walls
    return record


def _history(tmp_path, records):
    path = tmp_path / "history.jsonl"
    with open(path, "w", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record) + "\n")
    return str(path)


class TestHeadline:
    def test_speedup_preferred_higher_is_better(self):
        metric, value, higher = bench_trend._headline(
            _record(speedup=2.5, walls={"a": 9.0})
        )
        assert (metric, value, higher) == ("speedup", 2.5, True)

    def test_wall_time_fallback_lower_is_better(self):
        metric, value, higher = bench_trend._headline(
            _record(walls={"a": 1.0, "b": 2.0})
        )
        assert (metric, value, higher) == ("wall_s", 3.0, False)


class TestRegressionMath:
    def test_higher_is_better_drop_is_positive(self):
        assert bench_trend._regression(1.5, 2.0, True) == pytest.approx(
            0.25
        )

    def test_lower_is_better_rise_is_positive(self):
        assert bench_trend._regression(3.0, 2.0, False) == pytest.approx(
            0.5
        )

    def test_zero_best_never_divides(self):
        assert bench_trend._regression(1.0, 0.0, True) == 0.0


class TestSeriesKeying:
    def test_smoke_and_full_budgets_never_compared(self, tmp_path):
        """An 8k smoke run must not gate a 120k full run."""
        history = _history(tmp_path, [
            _record(speedup=2.0, instructions=8000),
            _record(speedup=0.5, instructions=120_000),
        ])
        series = bench_trend._load_series(history)
        assert len(series) == 2
        code = bench_trend.main(["--history", history, "check"])
        assert code == 0  # no series has two records: nothing gated


class TestCheckGate:
    def test_regression_beyond_threshold_fails(self, tmp_path, capsys):
        history = _history(tmp_path, [
            _record(speedup=2.0), _record(speedup=1.0),
        ])
        code = bench_trend.main(["--history", history, "check"])
        assert code == 1
        assert "FAIL" in capsys.readouterr().out

    def test_within_threshold_passes(self, tmp_path, capsys):
        history = _history(tmp_path, [
            _record(speedup=2.0), _record(speedup=1.9),
        ])
        code = bench_trend.main(["--history", history, "check"])
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_improvement_passes(self, tmp_path):
        history = _history(tmp_path, [
            _record(speedup=2.0), _record(speedup=3.0),
        ])
        assert bench_trend.main(["--history", history, "check"]) == 0

    def test_report_only_notes_but_exits_zero(self, tmp_path, capsys):
        history = _history(tmp_path, [
            _record(speedup=2.0), _record(speedup=0.5),
        ])
        code = bench_trend.main(
            ["--history", history, "check", "--report-only"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "FAIL" in out and "not failing" in out

    def test_gate_uses_best_not_previous(self, tmp_path, capsys):
        """A slow middle run must not lower the bar."""
        history = _history(tmp_path, [
            _record(speedup=2.0),
            _record(speedup=0.5),
            _record(speedup=1.0),  # better than previous, worse than best
        ])
        code = bench_trend.main(["--history", history, "check"])
        assert code == 1
        assert "best 2.0000" in capsys.readouterr().out


class TestReport:
    def test_report_shows_trend_and_delta(self, tmp_path, capsys):
        history = _history(tmp_path, [
            _record(speedup=2.0), _record(speedup=2.2),
        ])
        assert bench_trend.main(["--history", history, "report"]) == 0
        out = capsys.readouterr().out
        assert "interp_fastpath @ 8,000+2,000" in out
        assert "2 run(s)" in out
        assert "latest vs best-so-far" in out

    def test_empty_history_reports_cleanly(self, tmp_path, capsys):
        history = str(tmp_path / "missing.jsonl")
        assert bench_trend.main(["--history", history, "report"]) == 0
        assert "no bench history" in capsys.readouterr().out

    def test_torn_history_line_is_skipped(self, tmp_path):
        history = _history(tmp_path, [_record(speedup=2.0)])
        with open(history, "a", encoding="utf-8") as fh:
            fh.write('{"bench": "interp_fa')  # torn mid-write
        series = bench_trend._load_series(history)
        [records] = series.values()
        assert len(records) == 1
