"""Setuptools shim.

The project is fully described by pyproject.toml; this file exists so the
package can be installed editable on environments whose setuptools lacks
PEP 660 support (``pip install -e .`` falls back to the legacy path, and
``python setup.py develop`` works offline without the ``wheel`` package).
"""

from setuptools import setup

setup()
