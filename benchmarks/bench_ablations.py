"""Ablations over the self-repairing design choices (DESIGN.md).

* initial distance 1 vs the equation-(2) estimate (paper section 5.3:
  "almost identical" — the search converges regardless);
* same-object grouping on/off;
* the DLT's asymmetric stride-confidence penalty;
* the repair budget multiplier (paper: 2x the maximal distance).
"""

from conftest import sweep_workloads

from repro.harness.experiments import bench_instructions, bench_warmup
from repro.harness.sweep import (
    ablation_confidence_penalty,
    ablation_grouping,
    ablation_initial_distance,
    ablation_repair_budget,
)


def _budget():
    return bench_instructions()


def test_ablation_initial_distance(benchmark, report, engine):
    result = benchmark.pedantic(
        ablation_initial_distance,
        args=(sweep_workloads(), _budget()),
        kwargs={"warmup_instructions": bench_warmup(), "engine": engine},
        iterations=1,
        rounds=1,
    )
    report("ablation_initial_distance", result.render())
    # Paper: the two starting points end up "almost identical".  That
    # holds per-workload for most benchmarks; a stragglers' search can
    # park early at our run lengths, so assert the majority agree.
    variants = list(result.variants.values())
    names = set(variants[0]) & set(variants[1])
    close = sum(
        1 for n in names if abs(variants[0][n] - variants[1][n]) < 0.05
    )
    assert close >= len(names) / 2


def test_ablation_grouping(benchmark, report, engine):
    result = benchmark.pedantic(
        ablation_grouping,
        args=(sweep_workloads(), _budget()),
        kwargs={"warmup_instructions": bench_warmup(), "engine": engine},
        iterations=1,
        rounds=1,
    )
    report("ablation_grouping", result.render())
    assert result.variants


def test_ablation_confidence_penalty(benchmark, report, engine):
    result = benchmark.pedantic(
        ablation_confidence_penalty,
        args=(sweep_workloads(), _budget()),
        kwargs={"warmup_instructions": bench_warmup(), "engine": engine},
        iterations=1,
        rounds=1,
    )
    report("ablation_confidence_penalty", result.render())
    assert "-7" in result.variants


def test_ablation_repair_budget(benchmark, report, engine):
    result = benchmark.pedantic(
        ablation_repair_budget,
        args=(sweep_workloads(), _budget()),
        kwargs={"warmup_instructions": bench_warmup(), "engine": engine},
        iterations=1,
        rounds=1,
    )
    report("ablation_repair_budget", result.render())
    assert "2.0x" in result.variants


def test_ablation_phase_detection(benchmark, report, engine):
    from repro.harness.sweep import ablation_phase_detection

    result = benchmark.pedantic(
        ablation_phase_detection,
        args=(sweep_workloads(), _budget()),
        kwargs={"warmup_instructions": bench_warmup(), "engine": engine},
        iterations=1,
        rounds=1,
    )
    report("ablation_phase_detection", result.render())
    assert len(result.variants) == 2


def test_ablation_markov(benchmark, report, engine):
    from repro.harness.sweep import ablation_markov

    result = benchmark.pedantic(
        ablation_markov,
        args=(["dot", "mcf", "parser"], _budget()),
        kwargs={"warmup_instructions": bench_warmup(), "engine": engine},
        iterations=1,
        rounds=1,
    )
    report("ablation_markov", result.render())
    assert len(result.variants) == 2
