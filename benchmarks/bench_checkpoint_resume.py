"""Checkpoint resume — ascending budget sweeps pay only the delta.

The tentpole claim of the checkpoint subsystem: a sweep that asks for
ascending measured budgets B, 2B, 3B of the same cell costs one warmup
plus 3B measured instructions when the engine resumes from end-of-run
snapshots, versus three warmups plus 6B cold.  That is a ~2.6x
instruction-count reduction; this bench holds the realized wall-clock to
at most 50% of cold (pickling and zlib eat some of the margin) and
re-checks on every cell that the resumed payload is byte-identical to
the cold one, so the speedup can never come at the price of divergence.
"""

import json
import time

from bench_output import write_bench_record
from conftest import shapes_asserted, sweep_workloads

from repro.config import PrefetchPolicy
from repro.harness.engine import ExperimentEngine, make_job
from repro.harness.experiments import bench_instructions, bench_warmup

MAX_RESUMED_FRACTION = 0.50

POLICY = PrefetchPolicy.SELF_REPAIRING


def _budgets():
    top = bench_instructions()
    return [max(1, top * step // 3) for step in (1, 2, 3)]


def _jobs(workload):
    return [
        make_job(
            workload,
            policy=POLICY,
            max_instructions=budget,
            warmup_instructions=bench_warmup(),
        )
        for budget in _budgets()
    ]


def run_checkpoint_bench(tmp_root):
    """Times the same ascending sweep cold and checkpointed.

    Both sides run with the result cache off (a cache hit would time
    replay, not simulation); the checkpointed side gets a fresh store
    under ``tmp_root`` so every resume observed here was produced by
    this very sweep.
    """
    from repro.checkpoint import CheckpointStore

    workloads = sweep_workloads()[:2]
    rows = []
    for workload in workloads:
        cold_engine = ExperimentEngine(cache=None, checkpoints=None)
        start = time.perf_counter()
        cold = cold_engine.run(_jobs(workload), isolate=False)
        cold_s = time.perf_counter() - start

        store = CheckpointStore(tmp_root / workload)
        warm_engine = ExperimentEngine(cache=None, checkpoints=store)
        start = time.perf_counter()
        warm = warm_engine.run(_jobs(workload), isolate=False)
        warm_s = time.perf_counter() - start

        resumed = sum(
            1 for outcome in warm if outcome.resumed_from is not None
        )
        for cold_outcome, warm_outcome in zip(cold, warm):
            cold_payload = json.dumps(cold_outcome.result.to_dict())
            warm_payload = json.dumps(warm_outcome.result.to_dict())
            assert cold_payload == warm_payload, (
                f"resumed run diverged from cold on {workload} at "
                f"{warm_outcome.result.instructions} instructions"
            )
        rows.append((workload, cold_s, warm_s, resumed))
    return rows


def render(rows):
    budgets = ", ".join(f"{b:,}" for b in _budgets())
    lines = [
        "Checkpoint resume: ascending budget sweep, cold vs resumed",
        f"(budgets: {budgets} measured + {bench_warmup():,} warmup; "
        "payload equality asserted per cell)",
        "",
        f"{'workload':<10} {'cold (s)':>9} {'resumed (s)':>12} "
        f"{'fraction':>9} {'resumes':>8}",
    ]
    for workload, cold_s, warm_s, resumed in rows:
        lines.append(
            f"{workload:<10} {cold_s:>9.2f} {warm_s:>12.2f} "
            f"{warm_s / cold_s:>8.1%} {resumed:>8d}"
        )
    total_cold = sum(r[1] for r in rows)
    total_warm = sum(r[2] for r in rows)
    lines.append("")
    lines.append(
        f"sweep total: {total_warm:.2f}s resumed vs {total_cold:.2f}s "
        f"cold = {total_warm / total_cold:.1%} "
        f"(gate: <={MAX_RESUMED_FRACTION:.0%})"
    )
    return "\n".join(lines)


def test_checkpoint_resume_speedup(benchmark, report, tmp_path):
    rows = benchmark.pedantic(
        run_checkpoint_bench, args=(tmp_path,), iterations=1, rounds=1
    )
    report("checkpoint_resume", render(rows))
    total_cold = sum(r[1] for r in rows)
    total_warm = sum(r[2] for r in rows)
    wall_times = {}
    for workload, cold_s, warm_s, _resumed in rows:
        wall_times[f"{workload}/cold"] = cold_s
        wall_times[f"{workload}/resumed"] = warm_s
    write_bench_record(
        "checkpoint_resume",
        wall_times_s=wall_times,
        speedup=total_cold / total_warm,
        extra={
            "budgets": _budgets(),
            "resumes": sum(r[3] for r in rows),
            "gate_max_fraction": MAX_RESUMED_FRACTION,
        },
    )
    assert all(r[3] >= 2 for r in rows), (
        "every ascending sweep should resume its two longer budgets"
    )
    if not shapes_asserted():
        return  # tiny smoke budgets: constant overheads dominate
    fraction = total_warm / total_cold
    assert fraction <= MAX_RESUMED_FRACTION, (
        f"resumed sweep took {fraction:.1%} of cold wall time "
        f"(gate: <={MAX_RESUMED_FRACTION:.0%})"
    )
