"""Figure 9 — software vs hardware prefetching, both over no prefetching.

Paper: self-repairing software prefetching alone beats the 8x8 hardware
stream buffers on most benchmarks (+11% more speedup on average), but
dot, equake and swim favour hardware (simple stride patterns with short
distances, or too little trace coverage); the combination wins overall.
"""

from conftest import shapes_asserted

from repro.harness.experiments import fig9_sw_vs_hw


def test_fig9_sw_vs_hw(benchmark, report, engine):
    result = benchmark.pedantic(
        fig9_sw_vs_hw, kwargs={"engine": engine}, iterations=1, rounds=1
    )
    report("fig9_sw_vs_hw", result.render())
    if not shapes_asserted():
        return
    hw = result.mean_speedup("hw_only")
    combined = result.mean_speedup("combined")
    assert hw > 1.0
    assert combined >= hw  # SW on top of HW never loses on average
