"""Policy tournament — every contender on every workload, ranked.

Runs the full tournament arena (all builtin benchmarks plus the curated
DSL scenarios) across the three software policies and every registered
hardware-prefetcher zoo engine, renders the ranked table, and writes the
machine-readable record to ``results/BENCH_tournament.json`` (plus the
longitudinal history feed).  The shape gate checks structure (complete
coverage, deterministic ranking) and the adaptivity headline: the
self-repairing software prefetcher outranks every zoo hardware engine.
"""

import time

from bench_output import write_bench_record
from conftest import shapes_asserted

from repro.harness.experiments import tournament


def run_tournament(engine):
    start = time.perf_counter()
    result = tournament(engine=engine)
    return result, time.perf_counter() - start


def test_tournament(benchmark, report, engine):
    result, wall_s = benchmark.pedantic(
        run_tournament, kwargs={"engine": engine}, iterations=1, rounds=1
    )
    report("tournament", result.render())
    ranking = result.ranking
    write_bench_record(
        "tournament",
        wall_times_s={"tournament": wall_s},
        speedup=ranking[0]["mean_speedup"] if ranking else None,
        extra=result.to_dict(),
    )
    # Structure holds at any budget: full coverage, complete ranking.
    contenders = set(result.contenders)
    assert result.rows, "tournament produced no surviving workloads"
    for row in result.rows:
        assert set(row["speedup"]) == contenders
    assert {entry["policy"] for entry in ranking} == contenders
    if not shapes_asserted():
        return  # tiny smoke budgets: ratios are all noise
    by_policy = {e["policy"]: e["mean_speedup"] for e in ranking}
    zoo = {
        name: spd for name, spd in by_policy.items()
        if name not in ("hw_only", "basic", "self_repairing")
    }
    assert zoo, "no zoo engines competed"
    assert all(
        by_policy["self_repairing"] > spd for spd in zoo.values()
    ), "a zoo hardware engine outranked the self-repairing prefetcher"
