"""Shared bench plumbing.

Every bench regenerates one paper table/figure: it runs the corresponding
experiment from :mod:`repro.harness.experiments`, prints the paper-style
table (through capture-disabled output so it survives pytest's capture),
and writes it to ``benchmarks/results/<name>.txt``.

Budgets honour the environment knobs::

    REPRO_BENCH_INSTRUCTIONS   measured instructions per run (default 120k)
    REPRO_BENCH_WARMUP         warmup instructions per run   (default 200k)
    REPRO_BENCH_WORKLOADS      comma-separated subset of benchmarks
    REPRO_BENCH_JOBS           experiment-engine worker processes (default 1)

The sensitivity sweeps (Figures 7/8) and ablations default to a
representative workload subset; export REPRO_BENCH_WORKLOADS to widen.

Every bench routes its simulations through one shared
:class:`repro.harness.engine.ExperimentEngine` (the ``engine`` fixture),
so the HW_ONLY baselines the figures have in common are simulated once
per budget and replayed from the content-addressed cache everywhere else.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Subset used by the many-configuration sweeps to keep bench time sane.
SWEEP_WORKLOADS = ["art", "dot", "mcf", "parser", "swim"]


def sweep_workloads():
    raw = os.environ.get("REPRO_BENCH_WORKLOADS")
    if raw:
        return [n.strip() for n in raw.split(",") if n.strip()]
    return list(SWEEP_WORKLOADS)


def bench_jobs() -> int:
    """Worker-process count for the experiment engine."""
    raw = os.environ.get("REPRO_BENCH_JOBS", "")
    try:
        return max(1, int(raw))
    except ValueError:
        return 1


@pytest.fixture(scope="session")
def engine():
    """One experiment engine for the whole bench session: shared result
    cache, shared worker pool size, cumulative stats."""
    from repro.harness.engine import ExperimentEngine

    eng = ExperimentEngine(workers=bench_jobs())
    yield eng
    print(f"\n{eng.stats.summary()}")


def shapes_asserted() -> bool:
    """Shape assertions only hold at realistic budgets; tiny smoke runs
    (small REPRO_BENCH_INSTRUCTIONS) regenerate the tables without them."""
    from repro.harness.experiments import bench_instructions, bench_warmup

    return bench_instructions() >= 60_000 and bench_warmup() >= 100_000


@pytest.fixture
def report(capfd):
    """Print a rendered table through the capture and save it to disk."""

    def emit(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        with capfd.disabled():
            print()
            print(text)

    return emit
