"""Interpreter fast path — decoded dispatch vs the reference stepper.

The decoded fast path (``src/repro/cpu/fastpath.py``) must be a pure
wall-clock optimization: byte-identical results, measurably faster.
This bench times both interpreters on figure-5 workloads at the
standard budget and asserts the headline speedup, re-checking payload
identity on every cell so a perf regression can never hide a
correctness one.
"""

import json
import time

from bench_output import write_bench_record
from conftest import shapes_asserted

from repro.config import PrefetchPolicy
from repro.harness.experiments import bench_instructions, bench_warmup
from repro.harness.runner import run_simulation

#: Figure-5 cells where decoded dispatch dominates the profile (the
#: hw_only runs spend no time in the Trident runtime, so interpreter
#: overhead is the bottleneck).  The speedup gate takes the best cell:
#: the claim is "the fast path wins >=1.5x on a figure-5 workload",
#: not "on every workload" -- trace-heavy runs are memory-bound.
CELLS = (
    ("swim", PrefetchPolicy.HW_ONLY),
    ("applu", PrefetchPolicy.HW_ONLY),
    ("swim", PrefetchPolicy.SELF_REPAIRING),
    ("equake", PrefetchPolicy.SELF_REPAIRING),
)

MIN_SPEEDUP = 1.5


def _timed_cell(workload, policy, fast):
    start = time.perf_counter()
    result = run_simulation(
        workload,
        policy=policy,
        max_instructions=bench_instructions(),
        warmup_instructions=bench_warmup(),
        fast=fast,
    )
    return time.perf_counter() - start, json.dumps(result.to_dict())


def run_fastpath_bench():
    rows = []
    for workload, policy in CELLS:
        fast_s, fast_payload = _timed_cell(workload, policy, fast=True)
        slow_s, slow_payload = _timed_cell(workload, policy, fast=False)
        assert fast_payload == slow_payload, (
            f"fast path diverged on {workload}/{policy.value}"
        )
        rows.append((workload, policy.value, slow_s, fast_s, slow_s / fast_s))
    return rows


def render(rows):
    lines = [
        "Interpreter fast path: decoded dispatch vs reference stepper",
        f"(budget: {bench_instructions():,} measured "
        f"+ {bench_warmup():,} warmup instructions)",
        "",
        f"{'workload':<10} {'policy':<16} {'slow (s)':>9} "
        f"{'fast (s)':>9} {'speedup':>8}",
    ]
    for workload, policy, slow_s, fast_s, speedup in rows:
        lines.append(
            f"{workload:<10} {policy:<16} {slow_s:>9.2f} "
            f"{fast_s:>9.2f} {speedup:>7.2f}x"
        )
    best = max(r[4] for r in rows)
    lines.append("")
    lines.append(f"best speedup: {best:.2f}x (gate: >={MIN_SPEEDUP}x)")
    return "\n".join(lines)


def record_rows(rows):
    """Write the bench record (snapshot + history) for one run's rows.

    Shared by the pytest bench and ``tools/bench_trend.py measure`` so
    both produce identical records.
    """
    wall_times = {}
    for workload, policy, slow_s, fast_s, _speedup in rows:
        wall_times[f"{workload}/{policy}/slow"] = slow_s
        wall_times[f"{workload}/{policy}/fast"] = fast_s
    return write_bench_record(
        "interp_fastpath",
        wall_times_s=wall_times,
        speedup=max(r[4] for r in rows),
        extra={"gate_min_speedup": MIN_SPEEDUP},
    )


def test_interp_fastpath_speedup(benchmark, report):
    rows = benchmark.pedantic(
        run_fastpath_bench, iterations=1, rounds=1
    )
    report("interp_fastpath", render(rows))
    record_rows(rows)
    if not shapes_asserted():
        return  # tiny smoke budgets: ratios are all noise
    best = max(r[4] for r in rows)
    assert best >= MIN_SPEEDUP, (
        f"fast path best speedup {best:.2f}x below {MIN_SPEEDUP}x gate"
    )
