"""Resilience — chaos-testing the self-repair loop.

Halfway through the measured budget every run takes a permanent
+250-cycle DRAM latency hit (a memory-system phase shift injected through
the fault layer).  The claim under test is the motivation for section
3.5.2's repair budget: the basic prefetcher tunes once and is stuck with
a stale distance, while the self-repairing prefetcher re-opens mature
records (phase detection) and climbs back — repairs resume after the
fault and IPC recovers from the post-fault dip.
"""

from conftest import shapes_asserted, sweep_workloads

from repro.harness.experiments import resilience


def test_resilience(benchmark, report, engine):
    result = benchmark.pedantic(
        resilience,
        kwargs={"workloads": sweep_workloads(), "engine": engine},
        iterations=1,
        rounds=1,
    )
    report("resilience", result.render())
    assert not result.errors, result.errors
    if not shapes_asserted():
        return
    basic_repairs = sum(r["basic"]["repairs_after"] for r in result.rows)
    sr_repairs = sum(
        r["self_repairing"]["repairs_after"] for r in result.rows
    )
    # The basic policy froze its distances before the fault; only the
    # self-repairing policy fixes them afterwards and recovers more IPC.
    assert basic_repairs == 0
    assert sr_repairs > 0
    assert (
        result.mean_recovery("self_repairing")
        > result.mean_recovery("basic")
    )
