"""Figure 5 — the headline result.

Paper: over the 8x8 hardware baseline, basic (ADORE-style, one-shot
estimated distance) software prefetching gains +11% on average, whole-
object grouping slightly more, and the self-repairing prefetcher +23% —
with applu/facerec/fma3d gaining nothing *extra* from repair because a
small distance is already optimal for their long loop bodies.
"""

from conftest import shapes_asserted

from repro.harness.experiments import fig5_policies


def test_fig5_policies(benchmark, report, engine):
    result = benchmark.pedantic(
        fig5_policies, kwargs={"engine": engine}, iterations=1, rounds=1
    )
    report("fig5_policies", result.render())
    if not shapes_asserted():
        return
    basic = result.mean_speedup("basic")
    whole = result.mean_speedup("whole_object")
    repaired = result.mean_speedup("self_repairing")
    # The paper's ordering: basic <= whole-object <= self-repairing,
    # with self-repairing clearly ahead of basic.
    assert repaired > basic
    assert whole >= basic * 0.98
    assert repaired > 1.05
