"""Figure 3 / section 5.1 — optimizer overhead and helper activity.

Paper: the helper thread is active ~2.2% of cycles on average; running the
optimizer without ever linking its traces costs only ~0.6%.  Our runs are
~500x shorter than the paper's, so the (front-loaded) optimization
activity is proportionally larger; the claim reproduced is that the
overhead-only slowdown stays small even so.
"""

from conftest import shapes_asserted

from repro.harness.experiments import fig3_overhead


def test_fig3_overhead(benchmark, report, engine):
    result = benchmark.pedantic(
        fig3_overhead, kwargs={"engine": engine}, iterations=1, rounds=1
    )
    report("fig3_overhead", result.render())
    # The optimize-but-don't-link configuration must be nearly free.
    if not shapes_asserted():
        return
    assert result.mean_overhead < 0.05
