"""Figure 7 — sensitivity to the DLT monitoring window and miss-rate
threshold.

Paper: a 3% miss-rate threshold over a 256-access window works best; too
small a threshold over-prefetches, too big misses delinquent loads.
Runs a representative workload subset (REPRO_BENCH_WORKLOADS widens it).
"""

from conftest import sweep_workloads

from repro.harness.experiments import fig7_threshold_sweep


def test_fig7_threshold_sweep(benchmark, report):
    result = benchmark.pedantic(
        fig7_threshold_sweep,
        kwargs={"workloads": sweep_workloads()},
        iterations=1,
        rounds=1,
    )
    report("fig7_threshold_sweep", result.render())
    assert len(result.grid) == len(result.windows) * len(result.rates)
