"""Figure 7 — sensitivity to the DLT monitoring window and miss-rate
threshold.

Paper: a 3% miss-rate threshold over a 256-access window works best; too
small a threshold over-prefetches, too big misses delinquent loads.
Runs a representative workload subset (REPRO_BENCH_WORKLOADS widens it).

This bench doubles as the result cache's acceptance gauntlet: the sweep
runs twice against a private cold cache, and the warm pass — every one
of the grid's simulations replayed from disk — must finish in a quarter
of the cold serial wall time.
"""

import time

from conftest import shapes_asserted, sweep_workloads

from repro.harness.cache import ResultCache
from repro.harness.engine import ExperimentEngine
from repro.harness.experiments import fig7_threshold_sweep


def test_fig7_threshold_sweep(benchmark, report, tmp_path):
    cache = ResultCache(tmp_path / "cache")
    kwargs = {"workloads": sweep_workloads()}

    def cold_then_warm():
        cold_engine = ExperimentEngine(cache=cache)
        started = time.perf_counter()
        cold = fig7_threshold_sweep(engine=cold_engine, **kwargs)
        cold_s = time.perf_counter() - started

        warm_engine = ExperimentEngine(cache=cache)
        started = time.perf_counter()
        warm = fig7_threshold_sweep(engine=warm_engine, **kwargs)
        warm_s = time.perf_counter() - started
        return cold, warm, cold_s, warm_s, warm_engine.stats

    cold, warm, cold_s, warm_s, warm_stats = benchmark.pedantic(
        cold_then_warm, iterations=1, rounds=1
    )
    report("fig7_threshold_sweep", cold.render())
    print(
        f"\nfig7 cold serial: {cold_s:.2f}s, warm cache: {warm_s:.2f}s "
        f"({warm_s / cold_s:.1%} of cold)"
    )
    assert len(cold.grid) == len(cold.windows) * len(cold.rates)
    # The warm pass must be replay, not simulation ...
    assert warm_stats.jobs_run == 0, "warm pass re-simulated"
    assert warm.grid == cold.grid
    if not shapes_asserted():
        return
    # ... and at realistic budgets replay must win by at least 4x.
    assert warm_s <= 0.25 * cold_s, (
        f"warm cache {warm_s:.2f}s > 25% of cold serial {cold_s:.2f}s"
    )
