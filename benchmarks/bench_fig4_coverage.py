"""Figure 4 — load-miss coverage by hot traces and the prefetcher.

Paper: >85% of load misses fall inside hot traces and ~55% of all misses
are targeted by the software prefetcher; dot and parser have low trace
coverage, gap has low coverage but nearly-complete prefetchability of its
in-trace misses.
"""

from conftest import shapes_asserted

from repro.harness.experiments import fig4_coverage


def test_fig4_coverage(benchmark, report, engine):
    result = benchmark.pedantic(
        fig4_coverage, kwargs={"engine": engine}, iterations=1, rounds=1
    )
    report("fig4_coverage", result.render())
    if not shapes_asserted():
        return
    assert 0.0 < result.mean_prefetch_coverage <= result.mean_trace_coverage
    assert result.mean_trace_coverage > 0.5
