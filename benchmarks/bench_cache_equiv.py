"""Section 5.4's closing note — monitoring hardware vs more L1.

Paper: spending the DLT and watch-table storage on extra L1 capacity buys
merely +0.8%, far below what the prefetcher earns with the same bits.
"""

from conftest import shapes_asserted

from repro.harness.experiments import cache_equivalent_area


def test_cache_equivalent_area(benchmark, report, engine):
    result = benchmark.pedantic(
        cache_equivalent_area, kwargs={"engine": engine}, iterations=1, rounds=1
    )
    report("cache_equiv", result.render())
    if not shapes_asserted():
        return
    # A ~37% bigger L1 moves these working sets very little.
    assert abs(result.mean_speedup - 1.0) < 0.10
