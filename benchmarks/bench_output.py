"""Machine-readable bench records.

Each perf bench renders a human table into ``benchmarks/results/<name>.txt``
(via the ``report`` fixture) and, through :func:`write_bench_record`, a
JSON companion ``benchmarks/results/BENCH_<name>.json`` with the raw
wall-time and speedup numbers.  The JSON is what CI artifacts and
longitudinal tooling consume: stable keys, no layout to parse.

Record shape::

    {
      "bench": "interp_fastpath",
      "budget": {"instructions": 120000, "warmup": 200000},
      "host": {"python": "3.11.x", "platform": "Linux-..."},
      "wall_times_s": {"<label>": seconds, ...},
      "speedup": <headline ratio, when the bench has one>,
      ... bench-specific extras ...
    }

Besides the per-bench snapshot file, every record is also *appended* to
``results/BENCH_history.jsonl`` stamped with the wall-clock time and the
git revision — the longitudinal feed ``tools/bench_trend.py`` turns
into per-PR trend reports and a perf-regression gate.
"""

from __future__ import annotations

import json
import pathlib
import platform
import subprocess
from datetime import datetime, timezone
from typing import Dict, List, Optional

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Append-only longitudinal record: one JSON object per bench run, ever.
HISTORY_PATH = RESULTS_DIR / "BENCH_history.jsonl"


def _git_rev() -> Optional[str]:
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            cwd=pathlib.Path(__file__).parent,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    rev = proc.stdout.strip()
    return rev or None


def append_history(record: Dict) -> pathlib.Path:
    """Append one bench record to ``BENCH_history.jsonl``.

    The entry is the record plus ``recorded_at`` (UTC ISO timestamp)
    and ``git_rev``; the file only ever grows, so the full perf history
    of the repo is one greppable JSONL stream.
    """
    entry = dict(record)
    entry["recorded_at"] = datetime.now(timezone.utc).isoformat(
        timespec="seconds"
    )
    entry["git_rev"] = _git_rev()
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(HISTORY_PATH, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    return HISTORY_PATH


def read_history(path: Optional[pathlib.Path] = None) -> List[Dict]:
    """Load the history feed, oldest first; torn tail lines are skipped
    (same recovery rule as the job journal)."""
    records: List[Dict] = []
    target = HISTORY_PATH if path is None else pathlib.Path(path)
    try:
        with open(target, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if isinstance(record, dict):
                    records.append(record)
    except OSError:
        pass
    return records


def write_bench_record(
    name: str,
    *,
    wall_times_s: Dict[str, float],
    speedup: Optional[float] = None,
    extra: Optional[Dict] = None,
) -> pathlib.Path:
    """Write ``results/BENCH_<name>.json``; returns the path written.

    ``wall_times_s`` maps a bench-chosen label (a cell, a variant) to
    seconds.  ``speedup`` is the bench's headline ratio — the number its
    gate asserts on.  ``extra`` is merged in at the top level for
    bench-specific fields (per-cell tables, budgets swept, ...).
    """
    from repro.harness.experiments import bench_instructions, bench_warmup

    record: Dict = {
        "bench": name,
        "budget": {
            "instructions": bench_instructions(),
            "warmup": bench_warmup(),
        },
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "wall_times_s": {
            label: round(seconds, 4)
            for label, seconds in wall_times_s.items()
        },
    }
    if speedup is not None:
        record["speedup"] = round(speedup, 4)
    if extra:
        record.update(extra)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    append_history(record)
    return path
