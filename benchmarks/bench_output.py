"""Machine-readable bench records.

Each perf bench renders a human table into ``benchmarks/results/<name>.txt``
(via the ``report`` fixture) and, through :func:`write_bench_record`, a
JSON companion ``benchmarks/results/BENCH_<name>.json`` with the raw
wall-time and speedup numbers.  The JSON is what CI artifacts and
longitudinal tooling consume: stable keys, no layout to parse.

Record shape::

    {
      "bench": "interp_fastpath",
      "budget": {"instructions": 120000, "warmup": 200000},
      "host": {"python": "3.11.x", "platform": "Linux-..."},
      "wall_times_s": {"<label>": seconds, ...},
      "speedup": <headline ratio, when the bench has one>,
      ... bench-specific extras ...
    }
"""

from __future__ import annotations

import json
import pathlib
import platform
from typing import Dict, Optional

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def write_bench_record(
    name: str,
    *,
    wall_times_s: Dict[str, float],
    speedup: Optional[float] = None,
    extra: Optional[Dict] = None,
) -> pathlib.Path:
    """Write ``results/BENCH_<name>.json``; returns the path written.

    ``wall_times_s`` maps a bench-chosen label (a cell, a variant) to
    seconds.  ``speedup`` is the bench's headline ratio — the number its
    gate asserts on.  ``extra`` is merged in at the top level for
    bench-specific fields (per-cell tables, budgets swept, ...).
    """
    from repro.harness.experiments import bench_instructions, bench_warmup

    record: Dict = {
        "bench": name,
        "budget": {
            "instructions": bench_instructions(),
            "warmup": bench_warmup(),
        },
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "wall_times_s": {
            label: round(seconds, 4)
            for label, seconds in wall_times_s.items()
        },
    }
    if speedup is not None:
        record["speedup"] = round(speedup, 4)
    if extra:
        record.update(extra)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path
