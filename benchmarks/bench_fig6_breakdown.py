"""Figure 6 — breakdown of all dynamic loads.

Paper: with the self-repairing prefetcher, partial prefetch hits are rare
(the distance search converged) and misses *caused* by prefetching are
rarer still.
"""

from conftest import shapes_asserted

from repro.harness.experiments import fig6_breakdown
from repro.harness.report import arithmetic_mean


def test_fig6_breakdown(benchmark, report, engine):
    result = benchmark.pedantic(
        fig6_breakdown, kwargs={"engine": engine}, iterations=1, rounds=1
    )
    report("fig6_breakdown", result.render())
    if not shapes_asserted():
        return
    mean_caused = arithmetic_mean(
        [r["miss_due_to_prefetch"] for r in result.rows]
    )
    assert mean_caused < 0.05  # prefetch-caused misses are rare
