"""Figure 2 — baseline speedup of the hardware stream buffers.

Paper: 4x4 stream buffers give +35% over no prefetching on average, 8x8
gives +40%; the 8x8 configuration is the baseline for everything else.
"""

from conftest import shapes_asserted

from repro.harness.experiments import fig2_hw_baseline


def test_fig2_hw_baseline(benchmark, report, engine):
    result = benchmark.pedantic(
        fig2_hw_baseline, kwargs={"engine": engine}, iterations=1, rounds=1
    )
    report("fig2_hw_baseline", result.render())
    # Shape: both configurations help on average.  8x8 wins wherever the
    # paper's mechanism (stream count / depth) binds; a couple of
    # segment-broken pointer chases prefer the shallower 4x4 (less
    # overshoot), so the averages are only required to be comparable.
    if not shapes_asserted():
        return
    assert result.mean_speedup_4x4 > 1.0
    assert result.mean_speedup_8x8 > 1.0
    assert result.mean_speedup_8x8 >= result.mean_speedup_4x4 * 0.90
    # The stream-count-limited workloads must prefer the bigger buffers.
    by_name = {r["workload"]: r for r in result.rows}
    for name in ("galgel", "mgrid", "wupwise"):
        if name in by_name:
            row = by_name[name]
            assert row["speedup_8x8"] >= row["speedup_4x4"] * 0.95
