"""Figure 8 — sensitivity to the DLT size.

Paper: performance is mostly flat with DLT size, but benchmarks with many
concurrently-hot load sites (dot, parser) want the bigger tables; 1024
entries suffices.
"""

from conftest import shapes_asserted, sweep_workloads

from repro.harness.experiments import fig8_dlt_sweep


def test_fig8_dlt_sweep(benchmark, report, engine):
    result = benchmark.pedantic(
        fig8_dlt_sweep,
        kwargs={"workloads": sweep_workloads(), "engine": engine},
        iterations=1,
        rounds=1,
    )
    report("fig8_dlt_sweep", result.render())
    if not shapes_asserted():
        return
    biggest = result.by_size[max(result.sizes)]["mean"]
    smallest = result.by_size[min(result.sizes)]["mean"]
    # Bigger tables never hurt meaningfully.
    assert biggest >= smallest * 0.95
